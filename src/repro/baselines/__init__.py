"""Baseline offloading / allocation strategies.

The paper positions AirDnD against three strands of related work on edge
resource allocation — DeCloud's truthful double auction [7], smart-contract
based decentralised allocation [8] and a double auction for coded vehicular
edge computing [9] — plus the two obvious straw men (do everything locally,
ship everything to the cloud).  All five are implemented here so experiment
E7 can run the same workload through every mechanism:

* :mod:`repro.baselines.local_only` — never offload.
* :mod:`repro.baselines.cloud_offload` — ship raw data to a cloud over
  cellular and compute there (the architecture AirDnD argues against).
* :mod:`repro.baselines.greedy_nearest` — offload to the geographically
  nearest neighbour, ignoring everything else.
* :mod:`repro.baselines.decloud_auction` — McAfee-style truthful double
  auction between requester bids and provider asks (after [7]).
* :mod:`repro.baselines.smart_contract` — first-come-first-served contract
  allocation with collateral and reputation (after [8]).
* :mod:`repro.baselines.coded_vec_auction` — double auction with coded
  redundancy over several providers (after [9]).

The auction/contract mechanisms are implemented as standalone, unit-testable
market mechanisms plus thin :class:`~repro.core.placement.PlacementPolicy`
adapters, so they slot into an unmodified AirDnD orchestrator — the
comparison isolates the *allocation decision*, which is what the related
work actually varies.
"""

from repro.baselines.local_only import LocalOnlyPlacement
from repro.baselines.greedy_nearest import NearestNeighborPlacement
from repro.baselines.cloud_offload import CloudOffloadClient, CloudPerceptionService
from repro.baselines.decloud_auction import DoubleAuction, AuctionPlacement
from repro.baselines.smart_contract import SmartContractAllocator, ContractPlacement
from repro.baselines.coded_vec_auction import CodedVECAuction, CodedAuctionPlacement

__all__ = [
    "LocalOnlyPlacement",
    "NearestNeighborPlacement",
    "CloudOffloadClient",
    "CloudPerceptionService",
    "DoubleAuction",
    "AuctionPlacement",
    "SmartContractAllocator",
    "ContractPlacement",
    "CodedVECAuction",
    "CodedAuctionPlacement",
]

"""Centralised cloud baseline: ship raw data up, compute in the cloud.

This is the architecture the paper argues 5G-and-beyond networks should *not*
be used for: every participating vehicle periodically uploads its raw sensor
frames over the cellular network; a cloud perception service fuses them and
pushes results back down to subscribers.  The baseline is deliberately given
a fast, uncongested cloud — it still loses on bytes moved (E2) and usually on
end-to-end latency (E4) because raw frames dominate the uplink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.data.datatypes import DataType
from repro.data.pond import DataPond
from repro.data.sensors import SensorFrame
from repro.perception.objects import FusedObject, ObjectList, fuse_object_lists
from repro.radio.cellular import CellularNetwork
from repro.simcore.simulator import Simulator


@dataclass
class CloudSubscription:
    """A vehicle's subscription to fused results from the cloud."""

    node_name: str
    callback: Callable[[ObjectList], None]
    results_received: int = 0
    last_latency_s: float = 0.0


class CloudPerceptionService:
    """The cloud side: stores uploaded frames and periodically fuses them."""

    def __init__(
        self,
        sim: Simulator,
        cellular: CellularNetwork,
        fusion_period: float = 0.5,
        fusion_operations: float = 5e8,
    ) -> None:
        self.sim = sim
        self.cellular = cellular
        self.fusion_period = fusion_period
        self.fusion_operations = fusion_operations
        self._frames: Dict[str, SensorFrame] = {}
        self._subscriptions: List[CloudSubscription] = []
        self.fusions_performed = 0
        sim.schedule_periodic(fusion_period, self._fuse_and_publish, name="cloud-fusion")

    def subscribe(
        self, node_name: str, callback: Callable[[ObjectList], None]
    ) -> CloudSubscription:
        """Subscribe a vehicle to fused object lists."""
        subscription = CloudSubscription(node_name=node_name, callback=callback)
        self._subscriptions.append(subscription)
        return subscription

    def receive_frame(self, node_name: str, frame: SensorFrame) -> None:
        """Store the latest uploaded frame from ``node_name``."""
        self._frames[node_name] = frame

    # ------------------------------------------------------------- fusion

    def _fuse_and_publish(self) -> None:
        if not self._frames or not self._subscriptions:
            return

        def _after_compute() -> None:
            object_lists = []
            for node_name, frame in self._frames.items():
                objects = [
                    FusedObject(label=d.label, position=d.position, confidence=d.confidence)
                    for d in frame.detections
                ]
                object_lists.append(
                    ObjectList(observer=node_name, timestamp=frame.timestamp, objects=objects)
                )
            fused = fuse_object_lists(object_lists)
            self.fusions_performed += 1
            publish_time = self.sim.now
            for subscription in self._subscriptions:
                def _deliver(sub=subscription, value=fused, started=publish_time) -> None:
                    sub.results_received += 1
                    sub.last_latency_s = self.sim.now - started
                    sub.callback(value)

                self.cellular.download(value_size(fused), _deliver, kind="cloud_result")

        self.cellular.execute_in_cloud(self.fusion_operations, _after_compute)


def value_size(object_list: ObjectList) -> int:
    """Serialized size of a fused object list."""
    return object_list.size_bytes()


class CloudOffloadClient:
    """The vehicle side: periodically uploads raw frames over cellular."""

    def __init__(
        self,
        sim: Simulator,
        node_name: str,
        pond: DataPond,
        cellular: CellularNetwork,
        service: CloudPerceptionService,
        upload_period: float = 0.5,
        data_type: DataType = DataType.LIDAR_SCAN,
    ) -> None:
        self.sim = sim
        self.node_name = node_name
        self.pond = pond
        self.cellular = cellular
        self.service = service
        self.data_type = data_type
        self.frames_uploaded = 0
        self.latest_fused: Optional[ObjectList] = None
        self.result_latencies: List[float] = []
        self._subscription = service.subscribe(node_name, self._on_result)
        sim.schedule_periodic(upload_period, self._upload_latest, name=f"cloud-up:{node_name}")

    def _upload_latest(self) -> None:
        frame = self.pond.latest(self.data_type, self.sim.now)
        if frame is None:
            return

        def _delivered(f=frame) -> None:
            self.frames_uploaded += 1
            self.service.receive_frame(self.node_name, f)

        self.cellular.upload(frame.size_bytes, _delivered, kind="raw_frame")

    def _on_result(self, fused: ObjectList) -> None:
        self.latest_fused = fused
        self.result_latencies.append(self._subscription.last_latency_s)

    def known_labels(self) -> List[str]:
        """Labels the vehicle knows about from the latest cloud result."""
        if self.latest_fused is None:
            return []
        return self.latest_fused.labels()

"""Double auction for coded vehicular edge computing (after Ng et al., TVT'22).

The reference scheme splits one task into ``n`` coded sub-tasks of which any
``k`` suffice to reconstruct the result (an (n, k) MDS code), then buys the
``n`` execution slots from vehicular providers through a double auction.
Coding buys straggler/churn tolerance at the price of ``n/k`` extra compute.

The reproduction implements:

* the (n, k) coding model — :func:`coded_redundancy` and
  :func:`completion_probability` capture the straggler-tolerance math;
* the auction — reuses the :class:`~repro.baselines.decloud_auction.DoubleAuction`
  core with per-sub-task asks;
* :class:`CodedAuctionPlacement` — a placement adapter that returns the ``n``
  auction winners so the orchestrator's redundant-execution path (Model 2's
  ``redundancy`` field) runs the replicas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.decloud_auction import Ask, Bid, DoubleAuction, ask_price_for, bid_price_for
from repro.core.candidate import CandidateScore
from repro.core.models import TaskDescription


def coded_redundancy(n: int, k: int) -> float:
    """Compute overhead factor of an (n, k) code (n/k)."""
    if k < 1 or n < k:
        raise ValueError("need n >= k >= 1")
    return n / k


def completion_probability(n: int, k: int, per_provider_success: float) -> float:
    """Probability at least ``k`` of ``n`` independent providers finish.

    Straight binomial tail; providers succeed independently with probability
    ``per_provider_success`` (which in the vehicular setting is dominated by
    "still in range when the result is ready").
    """
    if not 0.0 <= per_provider_success <= 1.0:
        raise ValueError("per_provider_success must be a probability")
    if k < 1 or n < k:
        raise ValueError("need n >= k >= 1")
    p = per_provider_success
    total = 0.0
    for i in range(k, n + 1):
        total += math.comb(n, i) * (p ** i) * ((1.0 - p) ** (n - i))
    return total


def choose_redundancy(
    per_provider_success: float,
    target_success: float = 0.99,
    k: int = 1,
    max_n: int = 6,
) -> int:
    """Smallest ``n`` whose completion probability reaches ``target_success``."""
    for n in range(k, max_n + 1):
        if completion_probability(n, k, per_provider_success) >= target_success:
            return n
    return max_n


@dataclass
class CodedAllocation:
    """Outcome of one coded auction: which providers run sub-tasks."""

    task_id: int
    providers: List[str]
    n: int
    k: int
    clearing_price: float


class CodedVECAuction:
    """Buys ``n`` coded sub-task slots through a double auction."""

    def __init__(self, k: int = 1, target_success: float = 0.95) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.target_success = target_success
        self.auction = DoubleAuction()
        self.allocations: List[CodedAllocation] = []

    def allocate(
        self,
        task: TaskDescription,
        candidates: List[CandidateScore],
        per_provider_success: float = 0.8,
    ) -> Optional[CodedAllocation]:
        """Choose ``n`` and buy that many slots from the candidate providers."""
        if not candidates:
            return None
        n = choose_redundancy(
            per_provider_success, self.target_success, self.k, max_n=min(6, len(candidates))
        )
        n = min(n, len(candidates))
        # One bid per coded sub-task, each at the task's unit value.
        unit_bid = bid_price_for(task) / self.k
        bids = [
            Bid(requester=f"{task.requester or 'requester'}#{i}", price=unit_bid, task_id=task.task_id)
            for i in range(n)
        ]
        asks = [Ask(provider=c.name, price=ask_price_for(c) / self.k) for c in candidates]
        outcome = self.auction.clear(bids, asks)
        providers = [t.provider for t in outcome.trades]
        if len(providers) < n:
            # The market cleared fewer than n slots (or none): top up with the
            # cheapest remaining providers so the code rate is still met.
            remaining = sorted(
                (c for c in candidates if c.name not in providers),
                key=lambda c: ask_price_for(c),
            )
            providers.extend(c.name for c in remaining[: n - len(providers)])
        allocation = CodedAllocation(
            task_id=task.task_id,
            providers=providers[:n],
            n=n,
            k=self.k,
            clearing_price=outcome.clearing_price,
        )
        self.allocations.append(allocation)
        return allocation


class CodedAuctionPlacement:
    """Placement adapter: return the coded auction's ``n`` winners."""

    def __init__(self, k: int = 1, target_success: float = 0.95, per_provider_success: float = 0.8) -> None:
        self.mechanism = CodedVECAuction(k=k, target_success=target_success)
        self.per_provider_success = per_provider_success

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Return the winning providers (at least ``count``, order preserved)."""
        allocation = self.mechanism.allocate(
            task, candidates, per_provider_success=self.per_provider_success
        )
        if allocation is None:
            return []
        winners = [c for c in candidates if c.name in allocation.providers]
        remainder = [c for c in candidates if c.name not in allocation.providers]
        needed = max(count, len(winners))
        return (winners + remainder)[:needed]

"""DeCloud-style truthful double auction (after Zavodovski et al., ICDCS'19).

DeCloud matches edge-cloud *providers* (asks) with *requesters* (bids) in a
periodic double auction and uses a McAfee-style trade-reduction rule to keep
the mechanism truthful and budget-balanced.  The reproduction here implements
the market mechanism faithfully at the level the comparison needs:

* providers ask a price per task derived from their (in)ability to serve —
  low headroom → high ask;
* requesters bid a value derived from task urgency (tight deadline → high
  bid);
* bids are sorted descending, asks ascending; the largest ``k`` with
  ``bid_k ≥ ask_k`` trade, and the ``k``-th pair is dropped (trade reduction)
  so the clearing price can sit between ``bid_k`` and ``ask_k`` without any
  trader being able to gain by lying.

:class:`AuctionPlacement` adapts the mechanism into a placement policy: each
task becomes a single-bid auction over the current candidate set, and the
winning provider executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.candidate import CandidateScore
from repro.core.models import TaskDescription


@dataclass(frozen=True)
class Ask:
    """A provider's offer to sell capacity."""

    provider: str
    price: float
    capacity_ops: float = 1e9


@dataclass(frozen=True)
class Bid:
    """A requester's offer to buy capacity."""

    requester: str
    price: float
    task_id: int = -1


@dataclass
class Trade:
    """One matched bid/ask pair with its clearing price."""

    requester: str
    provider: str
    clearing_price: float
    bid: float
    ask: float


@dataclass
class AuctionOutcome:
    """Result of clearing one auction round."""

    trades: List[Trade] = field(default_factory=list)
    unmatched_bids: List[Bid] = field(default_factory=list)
    unmatched_asks: List[Ask] = field(default_factory=list)
    clearing_price: float = 0.0

    @property
    def trade_count(self) -> int:
        """Number of matched pairs."""
        return len(self.trades)


class DoubleAuction:
    """McAfee trade-reduction double auction."""

    def clear(self, bids: List[Bid], asks: List[Ask]) -> AuctionOutcome:
        """Match bids to asks and compute a single clearing price.

        Implements the McAfee mechanism: find the largest ``k`` such that the
        ``k``-th highest bid is at least the ``k``-th lowest ask; price is the
        midpoint of the ``(k+1)``-th pair when that midpoint is individually
        rational for all ``k`` traders, otherwise the ``k``-th pair is removed
        from trading (trade reduction) and the price is set from it.
        """
        sorted_bids = sorted(bids, key=lambda b: -b.price)
        sorted_asks = sorted(asks, key=lambda a: a.price)
        k = 0
        while (
            k < len(sorted_bids)
            and k < len(sorted_asks)
            and sorted_bids[k].price >= sorted_asks[k].price
        ):
            k += 1
        if k == 0:
            return AuctionOutcome(unmatched_bids=list(bids), unmatched_asks=list(asks))

        # Candidate price from the (k+1)-th pair, when it exists.
        if k < len(sorted_bids) and k < len(sorted_asks):
            candidate_price = 0.5 * (sorted_bids[k].price + sorted_asks[k].price)
        else:
            candidate_price = 0.5 * (sorted_bids[k - 1].price + sorted_asks[k - 1].price)

        if (
            k < len(sorted_bids)
            and k < len(sorted_asks)
            and sorted_asks[k - 1].price <= candidate_price <= sorted_bids[k - 1].price
        ):
            trading = k
            price = candidate_price
        else:
            # Trade reduction: drop the k-th pair and clear the first k-1 at a
            # price taken from it.  With a single crossing pair there is
            # nothing to reduce to, so that pair trades at its own midpoint
            # (sacrificing strict truthfulness for liveness, as practical
            # deployments of the mechanism do).
            trading = k - 1 if k > 1 else k
            price = 0.5 * (sorted_bids[k - 1].price + sorted_asks[k - 1].price)

        trades = [
            Trade(
                requester=sorted_bids[i].requester,
                provider=sorted_asks[i].provider,
                clearing_price=price,
                bid=sorted_bids[i].price,
                ask=sorted_asks[i].price,
            )
            for i in range(trading)
        ]
        matched_bidders = {t.requester for t in trades}
        matched_providers = {t.provider for t in trades}
        return AuctionOutcome(
            trades=trades,
            unmatched_bids=[b for b in bids if b.requester not in matched_bidders],
            unmatched_asks=[a for a in asks if a.provider not in matched_providers],
            clearing_price=price,
        )


def ask_price_for(candidate: CandidateScore, base_price: float = 1.0) -> float:
    """Derive a provider ask from a candidate's advertised state.

    Providers with plenty of headroom and empty queues ask little; loaded
    providers ask more (they value their remaining capacity higher).
    """
    headroom = max(candidate.neighbor.compute_headroom_ops, 1e6)
    load_factor = 1.0 + candidate.neighbor.queue_length
    return base_price * load_factor * (1e9 / headroom)


def bid_price_for(task: TaskDescription, base_price: float = 1.0) -> float:
    """Derive a requester bid from a task's urgency and size."""
    urgency = 1.0
    if task.deadline_s > 0:
        urgency = 1.0 + 10.0 / max(task.deadline_s, 0.1)
    size_factor = task.operations / 1e9
    return base_price * urgency * (1.0 + size_factor)


class AuctionPlacement:
    """Placement adapter: one DeCloud auction round per task."""

    def __init__(self, base_price: float = 1.0) -> None:
        self.base_price = base_price
        self.auction = DoubleAuction()
        self.rounds: List[AuctionOutcome] = []

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Run an auction between this task's bid and the candidates' asks."""
        if not candidates:
            return []
        bids = [Bid(requester=task.requester or "requester", price=bid_price_for(task, self.base_price), task_id=task.task_id)]
        asks = [Ask(provider=c.name, price=ask_price_for(c, self.base_price)) for c in candidates]
        outcome = self.auction.clear(bids, asks)
        self.rounds.append(outcome)
        if not outcome.trades:
            # Market did not clear: fall back to the cheapest asks so the task
            # still has a chance (mirrors DeCloud's posted-price fallback).
            ordered = sorted(candidates, key=lambda c: ask_price_for(c, self.base_price))
            return ordered[:count]
        winners = [t.provider for t in outcome.trades]
        chosen = [c for c in candidates if c.name in winners]
        remainder = sorted(
            (c for c in candidates if c.name not in winners),
            key=lambda c: ask_price_for(c, self.base_price),
        )
        return (chosen + remainder)[:count]

"""Local-only baseline: never offload.

Plugged into the orchestrator as a placement policy that refuses every
candidate, which forces the existing local-fallback path.  The ego then only
ever sees what its own sensors saw — the situation the "looking around the
corner" use case starts from.
"""

from __future__ import annotations

from typing import List

from repro.core.candidate import CandidateScore
from repro.core.models import TaskDescription


class LocalOnlyPlacement:
    """A placement policy that never selects a remote executor."""

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Always return an empty selection (forcing local execution)."""
        return []

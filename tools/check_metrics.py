#!/usr/bin/env python3
"""Validate a Prometheus text exposition 0.0.4 document.

Usage::

    python tools/check_metrics.py metrics.prom
    repro fabric status --store sweep.db --prometheus | python tools/check_metrics.py -

Checks the conformance rules that matter for a scraper:

* every sample line parses (name, optional label block, value);
* metric and label names match the Prometheus grammar;
* a family's ``# TYPE`` line precedes its samples and appears once;
* counters end in ``_total``;
* no duplicate (family, labels) sample;
* histogram families emit ``_bucket`` series with monotonically
  non-decreasing cumulative counts, a ``+Inf`` bucket equal to ``_count``,
  and matching ``_sum``/``_count`` lines;
* values are valid floats (``NaN``, ``+Inf``, ``-Inf`` allowed).

Exits non-zero listing every violation.  Used by the CI observability smoke
and by ``tests/telemetry/test_check_metrics.py``; importable as a module
(:func:`check_exposition`).
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"

_VALUE_TOKENS = {"NaN", "+Inf", "-Inf", "Inf"}

#: Suffixes a histogram family fans out into.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(token: str) -> Optional[float]:
    if token in _VALUE_TOKENS:
        return float("nan") if token == "NaN" else float(token.replace("Inf", "inf"))
    try:
        return float(token)
    except ValueError:
        return None


def _parse_labels(block: str) -> Optional[List[Tuple[str, str]]]:
    """Parse ``name="value",...`` respecting escapes; None on syntax error."""
    import re

    labels: List[Tuple[str, str]] = []
    rest = block
    pair = re.compile(
        r'\s*(' + LABEL_NAME + r')="((?:[^"\\]|\\.)*)"\s*(,|$)'
    )
    while rest:
        match = pair.match(rest)
        if match is None:
            return None
        labels.append((match.group(1), match.group(2)))
        rest = rest[match.end():]
    return labels


def _family_of(name: str, types: Dict[str, str]) -> str:
    """Map a sample name to its family (histogram suffixes fold in)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            return base
    return name


def check_exposition(text: str) -> List[str]:
    """Every conformance violation in ``text`` (empty list = valid)."""
    import re

    name_ok = re.compile(METRIC_NAME + r"$")
    sample_re = re.compile(
        r"(" + METRIC_NAME + r")(?:\{(.*)\})?\s+(\S+)(?:\s+\d+)?$"
    )
    errors: List[str] = []
    types: Dict[str, str] = {}
    sampled_before_type: List[str] = []
    seen: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {}
    # histogram bookkeeping: family -> labels-sans-le -> [(le, count)]
    buckets: Dict[str, Dict[Tuple[Tuple[str, str], ...], List[Tuple[str, float]]]] = {}
    sums: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    counts: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            _, _, family, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                errors.append(f"line {lineno}: unknown type {kind!r} for {family}")
            if family in types:
                errors.append(f"line {lineno}: duplicate TYPE for {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue  # HELP and comments are free-form
        match = sample_re.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name, label_block, value_token = match.groups()
        if not name_ok.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
            continue
        labels = _parse_labels(label_block) if label_block else []
        if labels is None:
            errors.append(f"line {lineno}: bad label block in: {line!r}")
            continue
        value = _parse_value(value_token)
        if value is None:
            errors.append(f"line {lineno}: bad value {value_token!r}")
            continue
        family = _family_of(name, types)
        kind = types.get(family)
        if kind is None:
            sampled_before_type.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
            continue
        if kind == "counter" and not name.endswith("_total"):
            errors.append(f"line {lineno}: counter {name!r} must end in _total")
        key = (name, tuple(sorted(labels)))
        if key in seen:
            errors.append(
                f"line {lineno}: duplicate sample {name}{dict(labels)!r} "
                f"(first at line {seen[key]})"
            )
        seen[key] = lineno
        if kind == "histogram":
            plain = tuple(sorted(pair for pair in labels if pair[0] != "le"))
            if name == family + "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"line {lineno}: _bucket without le label")
                else:
                    buckets.setdefault(family, {}).setdefault(plain, []).append(
                        (le, value)
                    )
            elif name == family + "_sum":
                sums.setdefault(family, {})[plain] = value
            elif name == family + "_count":
                counts.setdefault(family, {})[plain] = value

    errors.extend(sampled_before_type)
    for family, by_labels in buckets.items():
        for plain, series in by_labels.items():
            cumulative = [count for _, count in series]
            if any(b < a for a, b in zip(cumulative, cumulative[1:])):
                errors.append(
                    f"{family}_bucket{dict(plain)!r}: cumulative counts "
                    f"decrease: {cumulative}"
                )
            les = [le for le, _ in series]
            if "+Inf" not in les:
                errors.append(f"{family}_bucket{dict(plain)!r}: no +Inf bucket")
            elif counts.get(family, {}).get(plain) is not None:
                inf_count = dict(series)["+Inf"]
                if inf_count != counts[family][plain]:
                    errors.append(
                        f"{family}{dict(plain)!r}: +Inf bucket {inf_count} != "
                        f"_count {counts[family][plain]}"
                    )
            if counts.get(family, {}).get(plain) is None:
                errors.append(f"{family}{dict(plain)!r}: missing _count")
            if sums.get(family, {}).get(plain) is None:
                errors.append(f"{family}{dict(plain)!r}: missing _sum")
    return errors


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[0] == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(argv[0], "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"check_metrics: {error}", file=sys.stderr)
            return 2
    errors = check_exposition(text)
    for error in errors:
        print(f"check_metrics: {error}", file=sys.stderr)
    if errors:
        print(f"check_metrics: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    families = sum(1 for line in text.splitlines() if line.startswith("# TYPE "))
    print(f"check_metrics: OK ({families} families)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Check that relative markdown links in the docs resolve to real files.

Usage::

    python tools/check_links.py README.md docs

Arguments are markdown files or directories (scanned for ``*.md``).  Inline
links and images ``[text](target)`` are extracted; external targets
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
skipped; every remaining target must exist relative to the file that links
it.  Exits non-zero listing every broken link.  Used by the CI docs job and
by ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown link or image: [text](target) / ![alt](target).  Nested
#: image-links ([![alt](img)](url)) are caught because the regex matches the
#: inner and outer forms independently.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files(arguments: Iterable[str]) -> List[Path]:
    """Expand file/directory arguments into a sorted list of markdown files."""
    files: List[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def broken_links(markdown_file: Path) -> List[Tuple[str, str]]:
    """All relative links in ``markdown_file`` that do not resolve."""
    problems: List[Tuple[str, str]] = []
    text = markdown_file.read_text(encoding="utf-8")
    for target in _LINK_RE.findall(text):
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]  # drop in-file anchors
        if not relative:
            continue
        resolved = (markdown_file.parent / relative).resolve()
        if not resolved.exists():
            problems.append((target, str(resolved)))
    return problems


def main(argv: List[str]) -> int:
    """Entry point; returns a process exit code."""
    if not argv:
        print("usage: check_links.py FILE_OR_DIR [FILE_OR_DIR ...]", file=sys.stderr)
        return 2
    files = markdown_files(argv)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2
    failures = 0
    for markdown_file in files:
        if not markdown_file.exists():
            print(f"MISSING FILE {markdown_file}")
            failures += 1
            continue
        for target, resolved in broken_links(markdown_file):
            print(f"BROKEN {markdown_file}: ({target}) -> {resolved}")
            failures += 1
    checked = ", ".join(str(f) for f in files)
    if failures:
        print(f"{failures} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"all relative links resolve in: {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

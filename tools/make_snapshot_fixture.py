"""Regenerate the golden snapshot fixture.

The fixture pins the snapshot *format*: CI restores it and replays the
remainder of the run, asserting the report matches the expected values
written next to it.  Any change that breaks old artifacts — codec layout,
pickled class shapes, RNG stream naming — fails the replay loudly instead
of silently orphaning users' checkpoints.  After an *intentional* format
break (bump ``SNAPSHOT_VERSION`` first), regenerate with::

    PYTHONPATH=src python tools/make_snapshot_fixture.py
"""

from __future__ import annotations

import json
import os

from repro.scenarios import build_scenario
from repro.scenarios.base import Scenario
from repro.snapshot import SNAPSHOT_VERSION, SnapshotCodec

FIXTURE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests",
    "snapshot",
    "fixtures",
)
FIXTURE = os.path.join(FIXTURE_DIR, "urban_grid_mid_run.reprosnap")
EXPECTED = os.path.join(FIXTURE_DIR, "urban_grid_mid_run.expected.json")

#: The frozen run the fixture checkpoints (faults active, so the artifact
#: exercises injector stacks and armed crash/recovery events).
SCENARIO = "urban-grid"
FLEET = 6
SEED = 8
DURATION = 12.0
CUT = 5.0
KNOBS = dict(
    crash_rate=0.08,
    mean_downtime=2.0,
    radio_degradation=6.0,
    loss_burst_rate=0.4,
    malicious_fraction=0.3,
    adversary_profile="mixed",
)


def main() -> None:
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    scenario = build_scenario(SCENARIO, n=FLEET, seed=SEED, **KNOBS)
    scenario.run(DURATION, snapshot_at=CUT, snapshot_to=FIXTURE)

    restored = Scenario.restore(FIXTURE)
    report = restored.resume()
    with open(FIXTURE, "rb") as handle:
        header = SnapshotCodec().read_header(handle.read())
    expected = {
        "snapshot_version": SNAPSHOT_VERSION,
        "scenario": SCENARIO,
        "fleet": FLEET,
        "seed": SEED,
        "duration": DURATION,
        "cut": CUT,
        "knobs": KNOBS,
        "header_metadata": header["metadata"],
        "resumed_report": report.as_dict(),
    }
    with open(EXPECTED, "w") as handle:
        json.dump(expected, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {FIXTURE} ({os.path.getsize(FIXTURE)} bytes)")
    print(f"wrote {EXPECTED}")


if __name__ == "__main__":
    main()

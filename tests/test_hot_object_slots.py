"""The hot per-frame/per-event objects must stay ``__slots__``-only.

One :class:`~repro.simcore.event.Event` is allocated per scheduled callback,
one :class:`~repro.radio.interfaces.Frame` per transmission, one
:class:`~repro.mesh.messages.Beacon` per node per beacon period and one
:class:`~repro.radio.link.LinkQuality` per link pair per position epoch.  A
per-instance ``__dict__`` on any of them silently costs ~100 bytes and a
hash lookup per attribute access; this suite fails if one ever grows back.
"""

import pytest

from repro.geometry.vector import Vec2
from repro.mesh.messages import Beacon
from repro.radio.interfaces import Frame, _FrameDelivery
from repro.radio.link import LinkQuality
from repro.simcore.event import Event


def make_instances():
    return [
        Event(time=1.0, callback=lambda: None, name="t"),
        Frame(sender="a", destination=None, payload="x", size_bytes=10),
        Beacon(sender="a", timestamp=0.0, position=Vec2(0, 0), velocity=Vec2(0, 0)),
        LinkQuality(10.0, 1e6, 0.01, True, 50.0),
        _FrameDelivery(None, None, None),
    ]


@pytest.mark.parametrize("instance", make_instances(), ids=lambda i: type(i).__name__)
def test_hot_objects_have_no_instance_dict(instance):
    assert not hasattr(instance, "__dict__"), (
        f"{type(instance).__name__} grew a per-instance __dict__ — "
        "keep slots=True on this hot-path class"
    )


@pytest.mark.parametrize("instance", make_instances(), ids=lambda i: type(i).__name__)
def test_hot_objects_reject_stray_attributes(instance):
    # On Python 3.11 the generated __setattr__ of a frozen+slots dataclass
    # raises TypeError instead of AttributeError for unknown names (the
    # pre-slots class leaks into its super() call, gh-91126); either way the
    # stray write is rejected, which is what this test pins down.
    with pytest.raises((AttributeError, TypeError)):
        instance.stray_attribute = 1


def test_slotted_event_still_cancels_and_orders():
    from repro.simcore.event import EventQueue

    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    second = queue.push(1.0, lambda: None)
    first.cancel()
    assert queue.active_count() == 1
    assert queue.pop() is second


def test_slotted_beacon_supports_dataclass_replace():
    from dataclasses import replace

    beacon = Beacon(sender="a", timestamp=0.0, position=Vec2(0, 0), velocity=Vec2(1, 0))
    enriched = replace(beacon, compute_headroom_ops=5e9)
    assert enriched.compute_headroom_ops == 5e9
    assert enriched.sender == "a"

"""Tests for Vec2."""

import math

import pytest

from repro.geometry.vector import Vec2


def test_arithmetic():
    a = Vec2(1.0, 2.0)
    b = Vec2(3.0, -1.0)
    assert a + b == Vec2(4.0, 1.0)
    assert a - b == Vec2(-2.0, 3.0)
    assert a * 2 == Vec2(2.0, 4.0)
    assert 2 * a == Vec2(2.0, 4.0)
    assert a / 2 == Vec2(0.5, 1.0)
    assert -a == Vec2(-1.0, -2.0)


def test_length_and_distance():
    assert Vec2(3.0, 4.0).length() == 5.0
    assert Vec2(3.0, 4.0).length_squared() == 25.0
    assert Vec2(0.0, 0.0).distance_to(Vec2(3.0, 4.0)) == 5.0


def test_dot_and_cross():
    a = Vec2(1.0, 0.0)
    b = Vec2(0.0, 1.0)
    assert a.dot(b) == 0.0
    assert a.cross(b) == 1.0
    assert b.cross(a) == -1.0


def test_normalized_unit_and_zero():
    v = Vec2(10.0, 0.0).normalized()
    assert v == Vec2(1.0, 0.0)
    assert Vec2(0.0, 0.0).normalized() == Vec2(0.0, 0.0)


def test_rotation_quarter_turn():
    rotated = Vec2(1.0, 0.0).rotated(math.pi / 2)
    assert rotated.x == pytest.approx(0.0, abs=1e-12)
    assert rotated.y == pytest.approx(1.0)


def test_lerp_endpoints_and_midpoint():
    a = Vec2(0.0, 0.0)
    b = Vec2(10.0, 20.0)
    assert a.lerp(b, 0.0) == a
    assert a.lerp(b, 1.0) == b
    assert a.lerp(b, 0.5) == Vec2(5.0, 10.0)


def test_from_polar_and_angle_roundtrip():
    v = Vec2.from_polar(2.0, math.pi / 4)
    assert v.length() == pytest.approx(2.0)
    assert v.angle() == pytest.approx(math.pi / 4)


def test_iteration_and_tuple():
    v = Vec2(1.5, -2.5)
    assert tuple(v) == (1.5, -2.5)
    assert v.as_tuple() == (1.5, -2.5)


def test_immutable():
    v = Vec2(1.0, 2.0)
    with pytest.raises(Exception):
        v.x = 5.0

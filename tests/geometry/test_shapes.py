"""Tests for segments, polygons and rectangles."""

import pytest

from repro.geometry.shapes import Polygon, Rectangle, Segment
from repro.geometry.vector import Vec2


def test_segment_length_midpoint_point_at():
    seg = Segment(Vec2(0, 0), Vec2(10, 0))
    assert seg.length() == 10.0
    assert seg.midpoint() == Vec2(5, 0)
    assert seg.point_at(0.25) == Vec2(2.5, 0)


def test_segments_crossing_intersect():
    a = Segment(Vec2(0, 0), Vec2(10, 10))
    b = Segment(Vec2(0, 10), Vec2(10, 0))
    assert a.intersects(b)


def test_parallel_segments_do_not_intersect():
    a = Segment(Vec2(0, 0), Vec2(10, 0))
    b = Segment(Vec2(0, 1), Vec2(10, 1))
    assert not a.intersects(b)


def test_touching_segments_intersect():
    a = Segment(Vec2(0, 0), Vec2(5, 0))
    b = Segment(Vec2(5, 0), Vec2(5, 5))
    assert a.intersects(b)


def test_segment_distance_to_point():
    seg = Segment(Vec2(0, 0), Vec2(10, 0))
    assert seg.distance_to_point(Vec2(5, 3)) == 3.0
    assert seg.distance_to_point(Vec2(-4, 0)) == 4.0  # beyond endpoint


def test_polygon_requires_three_vertices():
    with pytest.raises(ValueError):
        Polygon([Vec2(0, 0), Vec2(1, 1)])


def test_polygon_contains_and_area():
    square = Polygon([Vec2(0, 0), Vec2(4, 0), Vec2(4, 4), Vec2(0, 4)])
    assert square.contains(Vec2(2, 2))
    assert not square.contains(Vec2(5, 5))
    assert square.area() == 16.0
    assert square.centroid() == Vec2(2, 2)


def test_polygon_boundary_counts_as_inside():
    square = Polygon([Vec2(0, 0), Vec2(4, 0), Vec2(4, 4), Vec2(0, 4)])
    assert square.contains(Vec2(0, 2))


def test_polygon_intersects_segment():
    square = Polygon([Vec2(0, 0), Vec2(4, 0), Vec2(4, 4), Vec2(0, 4)])
    crossing = Segment(Vec2(-1, 2), Vec2(5, 2))
    outside = Segment(Vec2(5, 5), Vec2(8, 8))
    inside = Segment(Vec2(1, 1), Vec2(2, 2))
    assert square.intersects_segment(crossing)
    assert not square.intersects_segment(outside)
    assert square.intersects_segment(inside)


def test_rectangle_properties_and_containment():
    rect = Rectangle(0, 0, 10, 5)
    assert rect.width == 10
    assert rect.height == 5
    assert rect.contains(Vec2(3, 3))
    assert not rect.contains(Vec2(11, 3))
    assert rect.area() == 50.0


def test_rectangle_rejects_degenerate():
    with pytest.raises(ValueError):
        Rectangle(0, 0, 0, 5)


def test_polygon_equality_and_hash():
    a = Polygon([Vec2(0, 0), Vec2(1, 0), Vec2(0, 1)])
    b = Polygon([Vec2(0, 0), Vec2(1, 0), Vec2(0, 1)])
    assert a == b
    assert hash(a) == hash(b)

"""Tests for the shared spatial substrate and its freshness contract."""

from repro.geometry.substrate import SpatialSubstrate
from repro.geometry.vector import Vec2


def test_insert_bumps_both_epochs_immediately():
    substrate = SpatialSubstrate(cell_size=50.0)
    assert (substrate.position_epoch, substrate.membership_epoch) == (0, 0)
    substrate.update("a", Vec2(0, 0))
    assert (substrate.position_epoch, substrate.membership_epoch) == (1, 1)
    assert "a" in substrate and len(substrate) == 1


def test_moves_are_batched_until_commit():
    substrate = SpatialSubstrate(cell_size=50.0)
    substrate.update("a", Vec2(0, 0))
    substrate.update("b", Vec2(10, 0))
    epoch = substrate.position_epoch
    # Moving existing keys does not bump; the tick-closing commit does, once.
    substrate.update("a", Vec2(5, 0))
    substrate.update("b", Vec2(15, 0))
    assert substrate.position_epoch == epoch
    substrate.commit()
    assert substrate.position_epoch == epoch + 1
    assert substrate.commit_count == 1
    assert substrate.membership_epoch == 2  # inserts only


def test_remove_bumps_epochs_and_ignores_unknown_keys():
    substrate = SpatialSubstrate(cell_size=50.0)
    substrate.update("a", Vec2(0, 0))
    epoch = substrate.position_epoch
    substrate.remove("a")
    assert substrate.position_epoch == epoch + 1
    assert "a" not in substrate
    substrate.remove("ghost")  # no-op, no bump
    assert substrate.position_epoch == epoch + 1


def test_queries_delegate_to_grid():
    substrate = SpatialSubstrate(cell_size=50.0)
    substrate.update("a", Vec2(0, 0))
    substrate.update("b", Vec2(30, 0))
    substrate.update("c", Vec2(500, 0))
    assert substrate.query_range(Vec2(0, 0), 100.0) == ["a", "b"]
    assert substrate.neighbors_of("a", 100.0) == ["b"]
    assert substrate.nearest(Vec2(28, 0), count=1) == ["b"]
    assert substrate.position_of("c") == Vec2(500, 0)
    assert dict(substrate.items())["b"] == Vec2(30, 0)

"""Tests for line-of-sight computation."""

from repro.geometry.los import VisibilityMap, line_of_sight
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2


def test_clear_path_has_line_of_sight():
    assert line_of_sight(Vec2(0, 0), Vec2(100, 0), [])


def test_building_blocks_line_of_sight():
    building = Rectangle(40, -10, 60, 10)
    assert not line_of_sight(Vec2(0, 0), Vec2(100, 0), [building])


def test_path_around_building_is_clear():
    building = Rectangle(40, -10, 60, 10)
    assert line_of_sight(Vec2(0, 20), Vec2(100, 20), [building])


def test_visibility_map_occlusion_and_fraction():
    vmap = VisibilityMap([Rectangle(10, 10, 30, 30)])
    observer = Vec2(0, 0)
    visible_target = Vec2(0, 50)
    occluded_target = Vec2(40, 40)
    assert vmap.has_line_of_sight(observer, visible_target)
    assert vmap.is_occluded(observer, occluded_target)
    fraction = vmap.visible_fraction(observer, [visible_target, occluded_target])
    assert fraction == 0.5


def test_visible_fraction_respects_range():
    vmap = VisibilityMap([])
    observer = Vec2(0, 0)
    targets = [Vec2(10, 0), Vec2(1000, 0)]
    assert vmap.visible_fraction(observer, targets, max_range=100) == 0.5
    assert vmap.visible_fraction(observer, []) == 1.0


def test_visible_targets_lists_only_visible():
    vmap = VisibilityMap([Rectangle(10, -5, 20, 5)])
    observer = Vec2(0, 0)
    behind = Vec2(30, 0)
    clear = Vec2(0, 30)
    assert vmap.visible_targets(observer, [behind, clear]) == [clear]


def test_add_obstacle_changes_answer():
    vmap = VisibilityMap([])
    a, b = Vec2(0, 0), Vec2(50, 0)
    assert vmap.has_line_of_sight(a, b)
    vmap.add_obstacle(Rectangle(20, -5, 30, 5))
    assert not vmap.has_line_of_sight(a, b)
    assert len(vmap.obstacles) == 1


def test_obstacle_epoch_counts_every_mutation():
    building = Rectangle(40, -10, 60, 10)
    other = Rectangle(80, -10, 90, 10)
    vmap = VisibilityMap([building])
    assert vmap.obstacle_epoch == 0
    vmap.add_obstacle(other)
    assert vmap.obstacle_epoch == 1
    vmap.set_obstacles([building])
    assert vmap.obstacle_epoch == 2
    assert vmap.remove_obstacle(building)
    assert vmap.obstacle_epoch == 3
    # Removing something absent is a no-op: no epoch bump.
    assert not vmap.remove_obstacle(building)
    assert vmap.obstacle_epoch == 3


def test_set_obstacles_replaces_and_requeries_correctly():
    near = Rectangle(40, -10, 60, 10)
    far = Rectangle(200, -10, 220, 10)
    vmap = VisibilityMap([near])
    assert vmap.is_occluded(Vec2(0, 0), Vec2(100, 0))
    vmap.set_obstacles([far])
    assert vmap.has_line_of_sight(Vec2(0, 0), Vec2(100, 0))
    assert vmap.is_occluded(Vec2(150, 0), Vec2(300, 0))


def test_remove_obstacle_unblocks_the_ray():
    building = Rectangle(40, -10, 60, 10)
    vmap = VisibilityMap([building])
    assert vmap.is_occluded(Vec2(0, 0), Vec2(100, 0))
    assert vmap.remove_obstacle(building)
    assert vmap.has_line_of_sight(Vec2(0, 0), Vec2(100, 0))


def test_index_rebuilds_are_amortised_per_epoch():
    building = Rectangle(40, -10, 60, 10)
    vmap = VisibilityMap([building])
    vmap.has_line_of_sight(Vec2(0, 0), Vec2(100, 0))
    assert vmap.index_rebuilds == 1
    # Queries between mutations reuse the index.
    vmap.has_line_of_sight(Vec2(0, 0), Vec2(100, 0))
    assert vmap.index_rebuilds == 1
    # A burst of mutations costs one lazy rebuild on the next query, not one
    # per mutation.
    vmap.set_obstacles([building])
    vmap.set_obstacles([building, Rectangle(80, -10, 90, 10)])
    assert vmap.index_rebuilds == 1
    vmap.has_line_of_sight(Vec2(0, 0), Vec2(100, 0))
    assert vmap.index_rebuilds == 2
    # Additive mutation extends the live index in place: no rebuild.
    vmap.add_obstacle(Rectangle(300, -10, 310, 10))
    vmap.has_line_of_sight(Vec2(0, 0), Vec2(100, 0))
    assert vmap.index_rebuilds == 2


def test_brute_force_and_index_answers_match_after_mutations():
    buildings = [Rectangle(40, -10, 60, 10), Rectangle(0, 40, 20, 60)]
    indexed = VisibilityMap(buildings)
    reference = VisibilityMap(buildings, use_obstacle_index=False)
    rays = [
        (Vec2(0, 0), Vec2(100, 0)),
        (Vec2(10, -20), Vec2(10, 100)),
        (Vec2(-5, -5), Vec2(120, 80)),
        (Vec2(70, 0), Vec2(100, 0)),
    ]
    for a, b in rays:
        assert indexed.has_line_of_sight(a, b) == reference.has_line_of_sight(a, b)
    for vmap in (indexed, reference):
        vmap.remove_obstacle(buildings[0])
        vmap.add_obstacle(Rectangle(90, -10, 95, 10))
    for a, b in rays:
        assert indexed.has_line_of_sight(a, b) == reference.has_line_of_sight(a, b)

"""Tests for line-of-sight computation."""

from repro.geometry.los import VisibilityMap, line_of_sight
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2


def test_clear_path_has_line_of_sight():
    assert line_of_sight(Vec2(0, 0), Vec2(100, 0), [])


def test_building_blocks_line_of_sight():
    building = Rectangle(40, -10, 60, 10)
    assert not line_of_sight(Vec2(0, 0), Vec2(100, 0), [building])


def test_path_around_building_is_clear():
    building = Rectangle(40, -10, 60, 10)
    assert line_of_sight(Vec2(0, 20), Vec2(100, 20), [building])


def test_visibility_map_occlusion_and_fraction():
    vmap = VisibilityMap([Rectangle(10, 10, 30, 30)])
    observer = Vec2(0, 0)
    visible_target = Vec2(0, 50)
    occluded_target = Vec2(40, 40)
    assert vmap.has_line_of_sight(observer, visible_target)
    assert vmap.is_occluded(observer, occluded_target)
    fraction = vmap.visible_fraction(observer, [visible_target, occluded_target])
    assert fraction == 0.5


def test_visible_fraction_respects_range():
    vmap = VisibilityMap([])
    observer = Vec2(0, 0)
    targets = [Vec2(10, 0), Vec2(1000, 0)]
    assert vmap.visible_fraction(observer, targets, max_range=100) == 0.5
    assert vmap.visible_fraction(observer, []) == 1.0


def test_visible_targets_lists_only_visible():
    vmap = VisibilityMap([Rectangle(10, -5, 20, 5)])
    observer = Vec2(0, 0)
    behind = Vec2(30, 0)
    clear = Vec2(0, 30)
    assert vmap.visible_targets(observer, [behind, clear]) == [clear]


def test_add_obstacle_changes_answer():
    vmap = VisibilityMap([])
    a, b = Vec2(0, 0), Vec2(50, 0)
    assert vmap.has_line_of_sight(a, b)
    vmap.add_obstacle(Rectangle(20, -5, 30, 5))
    assert not vmap.has_line_of_sight(a, b)
    assert len(vmap.obstacles) == 1

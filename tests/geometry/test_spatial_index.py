"""Tests for the uniform-grid spatial index."""

import pytest

from repro.geometry.spatial_index import SpatialGrid
from repro.geometry.vector import Vec2


def test_insert_and_query_range():
    grid = SpatialGrid(cell_size=50.0)
    grid.update("a", Vec2(0, 0))
    grid.update("b", Vec2(30, 0))
    grid.update("c", Vec2(500, 500))
    nearby = grid.query_range(Vec2(0, 0), 100.0)
    assert set(nearby) == {"a", "b"}


def test_update_moves_between_cells():
    grid = SpatialGrid(cell_size=10.0)
    grid.update("a", Vec2(0, 0))
    grid.update("a", Vec2(1000, 1000))
    assert grid.query_range(Vec2(0, 0), 50) == []
    assert grid.query_range(Vec2(1000, 1000), 5) == ["a"]
    assert len(grid) == 1


def test_remove_is_idempotent():
    grid = SpatialGrid()
    grid.update("a", Vec2(0, 0))
    grid.remove("a")
    grid.remove("a")
    assert "a" not in grid
    assert len(grid) == 0


def test_neighbors_excludes_self():
    grid = SpatialGrid(cell_size=20.0)
    grid.update("a", Vec2(0, 0))
    grid.update("b", Vec2(5, 0))
    assert grid.neighbors_of("a", 10.0) == ["b"]


def test_query_radius_is_euclidean_not_cell_based():
    grid = SpatialGrid(cell_size=100.0)
    grid.update("far-same-cell", Vec2(99, 99))
    grid.update("near", Vec2(3, 4))
    assert set(grid.query_range(Vec2(0, 0), 10.0)) == {"near"}


def test_nearest_returns_sorted_by_distance():
    grid = SpatialGrid()
    grid.update("far", Vec2(100, 0))
    grid.update("near", Vec2(10, 0))
    grid.update("middle", Vec2(50, 0))
    assert grid.nearest(Vec2(0, 0), count=2) == ["near", "middle"]


def test_invalid_arguments_raise():
    with pytest.raises(ValueError):
        SpatialGrid(cell_size=0)
    grid = SpatialGrid()
    grid.update("a", Vec2(0, 0))
    with pytest.raises(ValueError):
        grid.query_range(Vec2(0, 0), -1.0)
    with pytest.raises(KeyError):
        grid.position_of("missing")

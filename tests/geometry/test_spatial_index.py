"""Tests for the uniform-grid spatial index."""

import pytest

from repro.geometry.spatial_index import SpatialGrid
from repro.geometry.vector import Vec2


def test_insert_and_query_range():
    grid = SpatialGrid(cell_size=50.0)
    grid.update("a", Vec2(0, 0))
    grid.update("b", Vec2(30, 0))
    grid.update("c", Vec2(500, 500))
    nearby = grid.query_range(Vec2(0, 0), 100.0)
    assert set(nearby) == {"a", "b"}


def test_update_moves_between_cells():
    grid = SpatialGrid(cell_size=10.0)
    grid.update("a", Vec2(0, 0))
    grid.update("a", Vec2(1000, 1000))
    assert grid.query_range(Vec2(0, 0), 50) == []
    assert grid.query_range(Vec2(1000, 1000), 5) == ["a"]
    assert len(grid) == 1


def test_remove_is_idempotent():
    grid = SpatialGrid()
    grid.update("a", Vec2(0, 0))
    grid.remove("a")
    grid.remove("a")
    assert "a" not in grid
    assert len(grid) == 0


def test_neighbors_excludes_self():
    grid = SpatialGrid(cell_size=20.0)
    grid.update("a", Vec2(0, 0))
    grid.update("b", Vec2(5, 0))
    assert grid.neighbors_of("a", 10.0) == ["b"]


def test_query_radius_is_euclidean_not_cell_based():
    grid = SpatialGrid(cell_size=100.0)
    grid.update("far-same-cell", Vec2(99, 99))
    grid.update("near", Vec2(3, 4))
    assert set(grid.query_range(Vec2(0, 0), 10.0)) == {"near"}


def test_nearest_returns_sorted_by_distance():
    grid = SpatialGrid()
    grid.update("far", Vec2(100, 0))
    grid.update("near", Vec2(10, 0))
    grid.update("middle", Vec2(50, 0))
    assert grid.nearest(Vec2(0, 0), count=2) == ["near", "middle"]


def test_moving_node_prunes_emptied_cells():
    # Regression: cells used to be defaultdict entries that accumulated
    # forever as nodes moved — a slow memory leak across long runs.
    grid = SpatialGrid(cell_size=10.0)
    grid.update("a", Vec2(0, 0))
    for step in range(1, 200):
        grid.update("a", Vec2(step * 10.0, 0.0))
    assert grid.occupied_cell_count == 1
    grid.remove("a")
    assert grid.occupied_cell_count == 0


def test_remove_prunes_cell_and_queries_stay_clean():
    grid = SpatialGrid(cell_size=50.0)
    grid.update("a", Vec2(0, 0))
    grid.update("b", Vec2(5, 5))
    grid.remove("a")
    assert grid.occupied_cell_count == 1
    grid.remove("b")
    assert grid.occupied_cell_count == 0
    assert grid.query_range(Vec2(0, 0), 100.0) == []


def test_query_range_orders_by_insertion():
    grid = SpatialGrid(cell_size=25.0)
    for name, pos in [("c", Vec2(40, 0)), ("a", Vec2(0, 0)), ("b", Vec2(20, 0))]:
        grid.update(name, pos)
    assert grid.query_range(Vec2(20, 0), 50.0) == ["c", "a", "b"]


def test_nearest_matches_bruteforce_on_scattered_points():
    grid = SpatialGrid(cell_size=30.0)
    points = {}
    for i in range(60):
        # Deterministic scatter covering many cells, including far outliers.
        pos = Vec2(float((i * 37) % 500), float((i * 91) % 400))
        points[f"p{i:02d}"] = pos
        grid.update(f"p{i:02d}", pos)
    center = Vec2(120.0, 80.0)
    expected = sorted(points, key=lambda k: points[k].distance_to(center))
    for count in (1, 3, 10, 60, 100):
        assert grid.nearest(center, count=count) == expected[:count]


def test_nearest_crosses_empty_rings_to_far_cluster():
    grid = SpatialGrid(cell_size=10.0)
    grid.update("far-1", Vec2(1000.0, 1000.0))
    grid.update("far-2", Vec2(1005.0, 1000.0))
    assert grid.nearest(Vec2(0.0, 0.0), count=1) == ["far-1"]
    assert grid.nearest(Vec2(1004.0, 1000.0), count=2) == ["far-2", "far-1"]


def test_nearest_empty_grid_and_nonpositive_count():
    grid = SpatialGrid()
    assert grid.nearest(Vec2(0, 0), count=3) == []
    grid.update("a", Vec2(1, 1))
    assert grid.nearest(Vec2(0, 0), count=0) == []


def test_invalid_arguments_raise():
    with pytest.raises(ValueError):
        SpatialGrid(cell_size=0)
    grid = SpatialGrid()
    grid.update("a", Vec2(0, 0))
    with pytest.raises(ValueError):
        grid.query_range(Vec2(0, 0), -1.0)
    with pytest.raises(KeyError):
        grid.position_of("missing")

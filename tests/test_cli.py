"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, build_scenario, main, report_table
from repro.scenarios.highway import HighwayScenario
from repro.scenarios.intersection import IntersectionScenario
from repro.scenarios.urban_grid import UrbanGridScenario


def test_parser_defaults_and_overrides():
    parser = build_parser()
    args = parser.parse_args(["intersection"])
    assert args.vehicles == 6 and args.duration == 20.0 and args.seed == 0
    args = parser.parse_args(["urban-grid", "--vehicles", "9", "--duration", "5", "--seed", "3"])
    assert (args.vehicles, args.duration, args.seed) == (9, 5.0, 3)


def test_parser_requires_a_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_build_scenario_dispatch():
    parser = build_parser()
    assert isinstance(build_scenario(parser.parse_args(["intersection"])), IntersectionScenario)
    assert isinstance(build_scenario(parser.parse_args(["urban-grid"])), UrbanGridScenario)
    assert isinstance(build_scenario(parser.parse_args(["highway"])), HighwayScenario)


def test_main_runs_and_prints_report(capsys):
    exit_code = main(["intersection", "--vehicles", "4", "--duration", "5", "--seed", "1"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "AirDnD scenario report: intersection" in captured.out
    assert "tasks_submitted" in captured.out
    assert "occluded_detection_rate" in captured.out


def test_report_table_contains_every_metric():
    exit_code = main(["urban-grid", "--vehicles", "6", "--duration", "5", "--seed", "2"])
    assert exit_code == 0


def test_sweep_parser_defaults_and_overrides():
    parser = build_parser()
    args = parser.parse_args(["sweep", "--scenario", "highway", "--n", "4", "8"])
    assert args.command == "sweep"
    assert args.scenario == "highway"
    assert args.n == [4, 8]
    assert args.repetitions == 3 and args.duration == 20.0 and args.seed == 0
    assert args.jobs == 1 and args.out is None and args.sets is None


def test_sweep_requires_scenario_and_sizes():
    # Missing --scenario is a parse error; missing dimensions surfaces when
    # the sweep command actually runs.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--n", "4"])
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--scenario", "highway"])
    assert "at least one dimension" in str(excinfo.value)


def test_sweep_set_grammar_parses_dimensions():
    from repro.cli import parse_sweep_dimensions

    parser = build_parser()
    args = parser.parse_args([
        "sweep", "--scenario", "highway",
        "--n", "4", "8",
        "--set", "beacon_period=0.2,0.5",
        "--set", "heterogeneous_compute=true,false",
    ])
    dimensions = parse_sweep_dimensions(args)
    assert list(dimensions) == ["n", "beacon_period", "heterogeneous_compute"]
    assert dimensions["n"] == [4, 8]
    assert dimensions["beacon_period"] == [0.2, 0.5]
    assert dimensions["heterogeneous_compute"] == [True, False]


def test_sweep_set_grammar_rejects_malformed_input():
    from repro.cli import parse_sweep_dimensions

    parser = build_parser()

    def parse(*sets, n=None):
        argv = ["sweep", "--scenario", "highway"]
        if n:
            argv += ["--n", *map(str, n)]
        for assignment in sets:
            argv += ["--set", assignment]
        return parse_sweep_dimensions(parser.parse_args(argv))

    with pytest.raises(SystemExit):
        parse("beacon_period")          # no '='
    with pytest.raises(SystemExit):
        parse("beacon_period=")         # no values
    with pytest.raises(SystemExit):
        parse("n=4,8", n=[4, 8])        # duplicate dimension via the alias
    with pytest.raises(SystemExit):
        parse("n=4", "n=8")             # duplicate dimension
    with pytest.raises(SystemExit):
        parse("seed=1,2")               # the seed comes from --seed
    with pytest.raises(SystemExit):
        parse("num_vehicles=4", n=[4])  # fleet aliases normalise to n


def test_sweep_fleet_aliases_normalise_to_n():
    from repro.cli import parse_sweep_dimensions

    parser = build_parser()
    for alias in ("num_vehicles", "vehicles_per_direction"):
        args = parser.parse_args(
            ["sweep", "--scenario", "highway", "--set", f"{alias}=4,8"]
        )
        assert parse_sweep_dimensions(args) == {"n": [4, 8]}


def test_sweep_set_alias_output_identical_to_n(capsys):
    argv_tail = ["--duration", "3", "--repetitions", "1", "--seed", "2"]
    assert main(["sweep", "--scenario", "intersection", "--n", "4", "5", *argv_tail]) == 0
    via_n = capsys.readouterr().out
    assert main(["sweep", "--scenario", "intersection", "--set", "n=4,5", *argv_tail]) == 0
    via_set = capsys.readouterr().out
    assert via_n == via_set


def test_sweep_repeated_invocation_is_byte_identical(capsys):
    argv = ["sweep", "--scenario", "intersection", "--set", "n=4",
            "--duration", "3", "--repetitions", "2", "--seed", "5"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second


def test_sweep_jobs_output_identical_to_sequential(capsys):
    argv_tail = ["--duration", "3", "--repetitions", "2", "--seed", "4"]
    assert main(["sweep", "--scenario", "intersection", "--set", "n=4,5",
                 "--jobs", "1", *argv_tail]) == 0
    sequential = capsys.readouterr().out
    assert main(["sweep", "--scenario", "intersection", "--set", "n=4,5",
                 "--jobs", "3", *argv_tail]) == 0
    parallel = capsys.readouterr().out
    assert sequential == parallel


def test_sweep_two_dimensional_grid_prints_every_point(capsys):
    exit_code = main([
        "sweep", "--scenario", "intersection",
        "--set", "n=4,5", "--set", "beacon_period=0.4,0.8",
        "--duration", "3", "--repetitions", "1", "--seed", "1",
        "--metrics", "node_count",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    table_rows = [line.split() for line in captured.out.splitlines()
                  if "node_count" in line and "×" not in line]
    assert [(row[0], row[1]) for row in table_rows] == [
        ("4", "0.4"), ("4", "0.8"), ("5", "0.4"), ("5", "0.8")
    ]


def test_sweep_rejects_bad_out_suffix_before_running(monkeypatch, tmp_path):
    import repro.cli as cli

    def fail_if_swept(*args, **kwargs):
        raise AssertionError("the sweep ran before --out validation")

    monkeypatch.setattr(cli, "sweep_scenario_grid", fail_if_swept)
    with pytest.raises(SystemExit) as excinfo:
        main([
            "sweep", "--scenario", "highway", "--set", "n=4",
            "--duration", "3", "--repetitions", "1",
            "--out", str(tmp_path / "results.txt"),
        ])
    assert "use .json or .csv" in str(excinfo.value)


def test_sweep_exports_json_and_csv(tmp_path, capsys):
    import csv
    import json

    json_path = tmp_path / "sweep.json"
    csv_path = tmp_path / "sweep.csv"
    exit_code = main([
        "sweep", "--scenario", "highway",
        "--set", "n=2,3", "--set", "beacon_period=0.5,1.0",
        "--duration", "3", "--repetitions", "1", "--seed", "1",
        "--out", str(json_path), "--out", str(csv_path),
    ])
    assert exit_code == 0
    payload = json.loads(json_path.read_text())
    assert payload["sweep"]["scenario"] == "highway"
    assert payload["sweep"]["grid"] == {"n": [2, 3], "beacon_period": [0.5, 1.0]}
    assert len(payload["points"]) == 4
    assert all(len(point["runs"]) == 1 for point in payload["points"])
    assert "mesh_bytes" in payload["points"][0]["aggregates"]
    with open(csv_path, newline="") as handle:
        rows = list(csv.reader(handle))
    assert rows[0][:3] == ["n", "beacon_period", "repetition"]
    assert len(rows) == 1 + 4 * 3   # per point: one raw row + mean + stddev


def test_sweep_scenario_accepts_underscore_alias():
    parser = build_parser()
    args = parser.parse_args(["sweep", "--scenario", "urban_grid", "--n", "4"])
    assert args.scenario == "urban-grid"


def test_sweep_resume_reuses_cells_and_matches_fresh_run(tmp_path, capsys):
    import json

    first = tmp_path / "first.json"
    exit_code = main([
        "sweep", "--scenario", "highway", "--set", "n=2,3",
        "--duration", "3", "--repetitions", "1", "--seed", "1",
        "--out", str(first),
    ])
    assert exit_code == 0
    capsys.readouterr()

    # Resume over a superset grid: the shared points come from the file.
    second = tmp_path / "second.json"
    exit_code = main([
        "sweep", "--scenario", "highway", "--set", "n=2,3,4",
        "--duration", "3", "--repetitions", "1", "--seed", "1",
        "--resume", str(first), "--out", str(second),
    ])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "resume: reused 2 of 3 cells" in out
    old_points = {p["name"]: p["runs"] for p in json.loads(first.read_text())["points"]}
    new_points = {p["name"]: p["runs"] for p in json.loads(second.read_text())["points"]}
    for name, runs in old_points.items():
        assert new_points[name] == runs


def test_sweep_resume_rejects_missing_and_mismatched_files(tmp_path):
    with pytest.raises(SystemExit, match="no such file"):
        main([
            "sweep", "--scenario", "highway", "--n", "2",
            "--duration", "2", "--repetitions", "1",
            "--resume", str(tmp_path / "absent.json"),
        ])
    other = tmp_path / "other.json"
    exit_code = main([
        "sweep", "--scenario", "intersection", "--n", "3",
        "--duration", "2", "--repetitions", "1", "--out", str(other),
    ])
    assert exit_code == 0
    with pytest.raises(SystemExit, match="holds a 'intersection' sweep"):
        main([
            "sweep", "--scenario", "highway", "--n", "2",
            "--duration", "2", "--repetitions", "1",
            "--resume", str(other),
        ])
    # Cells simulated at a different duration must not be reused: their
    # metrics describe a different experiment.
    with pytest.raises(SystemExit, match="swept at --duration 2"):
        main([
            "sweep", "--scenario", "intersection", "--n", "3",
            "--duration", "30", "--repetitions", "1",
            "--resume", str(other),
        ])


def test_sweep_command_prints_aggregated_table(capsys):
    exit_code = main([
        "sweep", "--scenario", "intersection", "--n", "4", "5",
        "--duration", "3", "--repetitions", "2", "--seed", "1",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "AirDnD sweep: intersection" in captured.out
    assert "success_rate" in captured.out
    assert "stddev" in captured.out


def test_sweep_command_rejects_unknown_metric_names(monkeypatch):
    # The typo must be caught by the cheap pre-sweep probe — before any grid
    # point has run, not after minutes of simulation.
    import repro.cli as cli

    def fail_if_swept(*args, **kwargs):
        raise AssertionError("the sweep ran before --metrics validation")

    monkeypatch.setattr(cli, "sweep_scenario_grid", fail_if_swept)
    with pytest.raises(SystemExit) as excinfo:
        main([
            "sweep", "--scenario", "intersection", "--n", "4",
            "--duration", "3", "--repetitions", "1",
            "--metrics", "sucess_rate",
        ])
    assert "unknown metric" in str(excinfo.value)
    assert "success_rate" in str(excinfo.value)  # the fix is suggested


def test_sweep_command_with_explicit_metrics(capsys):
    exit_code = main([
        "sweep", "--scenario", "intersection", "--n", "4",
        "--duration", "3", "--repetitions", "1",
        "--metrics", "node_count", "tasks_submitted",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "node_count" in captured.out
    assert "mesh_bytes" not in captured.out


def test_sweep_profile_prints_hot_spots_and_dumps_stats(tmp_path, capsys):
    stats_path = tmp_path / "sweep.prof"
    exit_code = main([
        "sweep", "--scenario", "highway", "--n", "3",
        "--duration", "2", "--repetitions", "1",
        "--profile", "--profile-top", "5", "--profile-out", str(stats_path),
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    # The sweep table still renders, followed by the profile report.
    assert "AirDnD sweep: highway" in captured.out
    assert "profile: top 5 functions by cumulative time" in captured.out
    assert "cumtime" in captured.out
    # The raw stats are loadable with the standard tooling.
    import pstats

    stats = pstats.Stats(str(stats_path))
    assert stats.total_calls > 0


def test_sweep_profile_with_jobs_warns_about_workers(capsys):
    exit_code = main([
        "sweep", "--scenario", "highway", "--n", "3",
        "--duration", "2", "--repetitions", "1", "--jobs", "2",
        "--profile", "--profile-top", "3",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "--jobs 1" in captured.err


def test_sweep_profile_with_jobs_merges_worker_stats(tmp_path, capsys):
    """The merged profile must contain actual simulation work, which only
    happens inside the worker processes when --jobs > 1."""
    stats_path = tmp_path / "sweep-jobs.prof"
    exit_code = main([
        "sweep", "--scenario", "highway", "--n", "3",
        "--duration", "2", "--repetitions", "2", "--jobs", "2",
        "--profile", "--profile-top", "5", "--profile-out", str(stats_path),
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "--jobs 1" in captured.err
    import pstats

    stats = pstats.Stats(str(stats_path))
    # Without the worker merge the parent profile holds only pool
    # orchestration; the simulator main loop proves a cell was profiled.
    profiled_files = {file for (file, _line, _name) in stats.stats}
    assert any(file.endswith("simcore/simulator.py") for file in profiled_files)


def test_serve_parser_defaults_and_overrides():
    parser = build_parser()
    args = parser.parse_args(["serve"])
    assert args.host == "127.0.0.1"
    assert args.port == 8517
    assert args.step_slice == 2000
    assert args.snapshot_dir is None
    assert not args.no_auto_drive
    assert args.server == "auto"
    args = parser.parse_args([
        "serve", "--host", "0.0.0.0", "--port", "9000",
        "--step-slice", "500", "--snapshot-dir", "/tmp/evict",
        "--no-auto-drive", "--server", "stdlib",
    ])
    assert (args.host, args.port, args.step_slice) == ("0.0.0.0", 9000, 500)
    assert args.snapshot_dir == "/tmp/evict"
    assert args.no_auto_drive
    assert args.server == "stdlib"


def test_serve_rejects_unknown_server_backend():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--server", "gunicorn"])


def test_serve_command_serves_requests_over_tcp():
    import json
    import socket
    import threading
    import urllib.request

    from repro.cli import serve_command

    # An ephemeral port avoids collisions with parallel test runs.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--port", str(port), "--server", "stdlib"]
    )
    thread = threading.Thread(target=serve_command, args=(args,), daemon=True)
    thread.start()
    payload = None
    for _ in range(50):
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=1
            ) as response:
                payload = json.loads(response.read())
            break
        except OSError:
            import time

            time.sleep(0.1)
    assert payload["status"] == "ok"
    assert payload["sessions"] == 0
    assert payload["states"]["running"] == 0


# ------------------------------------------------------------------ telemetry


def test_run_trace_writes_chrome_trace_json(tmp_path, capsys):
    import json

    path = tmp_path / "run.trace.json"
    exit_code = main([
        "run", "--scenario", "intersection", "--vehicles", "4",
        "--duration", "4", "--seed", "1", "--trace", str(path),
    ])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert f"events written to {path}" in out
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    assert doc["otherData"]["schema"] == "repro.trace/1"
    names = {event["name"] for event in doc["traceEvents"]}
    assert {"window_open", "window_advance", "window_close"} <= names
    assert "dispatch_batch" in names


def test_run_trace_does_not_change_the_report(tmp_path, capsys):
    argv = ["run", "--scenario", "intersection", "--vehicles", "4",
            "--duration", "4", "--seed", "1"]
    assert main(argv) == 0
    plain = capsys.readouterr().out
    assert main(argv + ["--trace", str(tmp_path / "t.json")]) == 0
    traced = capsys.readouterr().out
    # Everything except the trailing "trace: ..." line is byte-identical.
    assert traced.startswith(plain)
    assert traced[len(plain):].startswith("trace: ")


def test_run_trace_sample_must_be_positive():
    with pytest.raises(SystemExit, match="--trace-sample"):
        main([
            "run", "--scenario", "intersection", "--vehicles", "4",
            "--duration", "4", "--trace", "/tmp/unused.json",
            "--trace-sample", "0",
        ])


def test_sweep_trace_dir_writes_one_trace_per_cell(tmp_path, capsys):
    import json

    trace_dir = tmp_path / "traces"
    exit_code = main([
        "sweep", "--scenario", "intersection", "--set", "n=4,5",
        "--duration", "4", "--repetitions", "1", "--trace-dir", str(trace_dir),
    ])
    assert exit_code == 0
    assert "one Chrome trace-event file per fresh cell" in capsys.readouterr().out
    traces = sorted(trace_dir.glob("cell-s*.json"))
    assert len(traces) == 2  # one per grid cell, named by the cell seed
    for path in traces:
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["traceEvents"]


def test_sweep_trace_dir_rejects_parallel_and_warm_start(tmp_path):
    base = ["sweep", "--scenario", "intersection", "--set", "n=4",
            "--duration", "4", "--trace-dir", str(tmp_path / "t")]
    with pytest.raises(SystemExit, match="drop --jobs"):
        main(base + ["--jobs", "2"])
    with pytest.raises(SystemExit, match="--warm-start"):
        main(base + ["--warm-start"])


def test_fabric_submit_rejects_trace_dir(tmp_path):
    with pytest.raises(SystemExit, match="--trace-dir"):
        main([
            "sweep", "--scenario", "intersection", "--set", "n=4",
            "--duration", "4", "--fabric", str(tmp_path / "store.db"),
            "--trace-dir", str(tmp_path / "traces"),
        ])


def test_fabric_status_prometheus_is_valid_exposition(tmp_path, capsys):
    from tests.telemetry.test_check_metrics import check_exposition

    store = tmp_path / "store.db"
    assert main([
        "sweep", "--scenario", "intersection", "--set", "n=4",
        "--duration", "4", "--repetitions", "1", "--fabric", str(store),
    ]) == 0
    capsys.readouterr()
    assert main(["fabric", "status", "--store", str(store), "--prometheus"]) == 0
    text = capsys.readouterr().out
    assert check_exposition(text) == []
    assert 'repro_fabric_cells{state="pending"} 1' in text

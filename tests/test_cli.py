"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, build_scenario, main, report_table
from repro.scenarios.highway import HighwayScenario
from repro.scenarios.intersection import IntersectionScenario
from repro.scenarios.urban_grid import UrbanGridScenario


def test_parser_defaults_and_overrides():
    parser = build_parser()
    args = parser.parse_args(["intersection"])
    assert args.vehicles == 6 and args.duration == 20.0 and args.seed == 0
    args = parser.parse_args(["urban-grid", "--vehicles", "9", "--duration", "5", "--seed", "3"])
    assert (args.vehicles, args.duration, args.seed) == (9, 5.0, 3)


def test_parser_requires_a_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_build_scenario_dispatch():
    parser = build_parser()
    assert isinstance(build_scenario(parser.parse_args(["intersection"])), IntersectionScenario)
    assert isinstance(build_scenario(parser.parse_args(["urban-grid"])), UrbanGridScenario)
    assert isinstance(build_scenario(parser.parse_args(["highway"])), HighwayScenario)


def test_main_runs_and_prints_report(capsys):
    exit_code = main(["intersection", "--vehicles", "4", "--duration", "5", "--seed", "1"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "AirDnD scenario report: intersection" in captured.out
    assert "tasks_submitted" in captured.out
    assert "occluded_detection_rate" in captured.out


def test_report_table_contains_every_metric():
    exit_code = main(["urban-grid", "--vehicles", "6", "--duration", "5", "--seed", "2"])
    assert exit_code == 0


def test_sweep_parser_defaults_and_overrides():
    parser = build_parser()
    args = parser.parse_args(["sweep", "--scenario", "highway", "--n", "4", "8"])
    assert args.command == "sweep"
    assert args.scenario == "highway"
    assert args.n == [4, 8]
    assert args.repetitions == 3 and args.duration == 20.0 and args.seed == 0


def test_sweep_requires_scenario_and_sizes():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--scenario", "highway"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--n", "4"])


def test_sweep_command_prints_aggregated_table(capsys):
    exit_code = main([
        "sweep", "--scenario", "intersection", "--n", "4", "5",
        "--duration", "3", "--repetitions", "2", "--seed", "1",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "AirDnD sweep: intersection" in captured.out
    assert "success_rate" in captured.out
    assert "stddev" in captured.out


def test_sweep_command_rejects_unknown_metric_names():
    with pytest.raises(SystemExit) as excinfo:
        main([
            "sweep", "--scenario", "intersection", "--n", "4",
            "--duration", "3", "--repetitions", "1",
            "--metrics", "sucess_rate",
        ])
    assert "unknown metric" in str(excinfo.value)
    assert "success_rate" in str(excinfo.value)  # the fix is suggested


def test_sweep_command_with_explicit_metrics(capsys):
    exit_code = main([
        "sweep", "--scenario", "intersection", "--n", "4",
        "--duration", "3", "--repetitions", "1",
        "--metrics", "node_count", "tasks_submitted",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "node_count" in captured.out
    assert "mesh_bytes" not in captured.out

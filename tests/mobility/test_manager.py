"""Tests for the mobility manager."""

import pytest

from repro.geometry.vector import Vec2
from repro.mobility.manager import MobilityManager
from repro.mobility.vehicle import Vehicle
from repro.mobility.waypoints import StaticNode
from repro.simcore.simulator import Simulator


def test_manager_advances_nodes_on_tick():
    sim = Simulator()
    manager = MobilityManager(sim, tick=0.1)
    vehicle = Vehicle(sim, [Vec2(0, 0), Vec2(100, 0)], initial_speed=10.0)
    manager.add_node(vehicle)
    sim.run(until=2.0)
    assert vehicle.position.x > 5.0
    assert manager.position_of(vehicle.name).x == vehicle.position.x


def test_manager_updates_spatial_index():
    sim = Simulator()
    manager = MobilityManager(sim, tick=0.1, cell_size=50.0)
    a = StaticNode(sim, Vec2(0, 0), name="a")
    b = Vehicle(sim, [Vec2(200, 0), Vec2(0, 0)], name="b", initial_speed=20.0)
    manager.add_node(a)
    manager.add_node(b)
    assert manager.neighbors_within("a", 100.0) == []
    sim.run(until=10.0)
    assert "b" in manager.neighbors_within("a", 100.0)


def test_duplicate_names_rejected():
    sim = Simulator()
    manager = MobilityManager(sim)
    manager.add_node(StaticNode(sim, Vec2(0, 0), name="x"))
    with pytest.raises(ValueError):
        manager.add_node(StaticNode(sim, Vec2(1, 1), name="x"))


def test_remove_node():
    sim = Simulator()
    manager = MobilityManager(sim)
    node = StaticNode(sim, Vec2(0, 0), name="x")
    manager.add_node(node)
    manager.remove_node("x")
    assert manager.nodes == []
    assert manager.nodes_within(Vec2(0, 0), 10.0) == []


def test_tick_listener_called():
    sim = Simulator()
    manager = MobilityManager(sim, tick=0.5)
    manager.add_node(StaticNode(sim, Vec2(0, 0)))
    times = []
    manager.on_tick(lambda now: times.append(now))
    sim.run(until=2.0)
    assert times == [0.5, 1.0, 1.5, 2.0]


def test_traces_recorded_when_enabled():
    sim = Simulator()
    manager = MobilityManager(sim, tick=0.1, record_traces=True)
    vehicle = Vehicle(sim, [Vec2(0, 0), Vec2(50, 0)], initial_speed=5.0)
    manager.add_node(vehicle)
    sim.run(until=3.0)
    trace = manager.traces[vehicle.name]
    assert len(trace) > 10
    assert trace.total_distance() > 0


def test_stop_halts_updates():
    sim = Simulator()
    manager = MobilityManager(sim, tick=0.1)
    vehicle = Vehicle(sim, [Vec2(0, 0), Vec2(100, 0)], initial_speed=10.0)
    manager.add_node(vehicle)
    sim.run(until=1.0)
    x_at_stop = vehicle.position.x
    manager.stop()
    sim.run(until=3.0)
    assert vehicle.position.x == x_at_stop


def test_invalid_tick_rejected():
    with pytest.raises(ValueError):
        MobilityManager(Simulator(), tick=0.0)


def test_position_epoch_advances_on_ticks_and_membership():
    sim = Simulator()
    manager = MobilityManager(sim, tick=0.1)
    start = manager.position_epoch
    node = StaticNode(sim, Vec2(0, 0), name="s")
    manager.add_node(node)
    assert manager.position_epoch == start + 1
    sim.run(until=1.0)
    after_ticks = manager.position_epoch
    assert after_ticks >= start + 1 + 10  # one bump per tick
    manager.remove_node("s")
    assert manager.position_epoch == after_ticks + 1


def test_manager_grid_is_the_substrate_grid():
    # The manager keeps no private spatial structure: `grid` is a view of
    # the shared substrate, and ticks sync it exactly once per node.
    sim = Simulator()
    manager = MobilityManager(sim, tick=0.1)
    assert manager.grid is manager.substrate.grid
    for index in range(3):
        manager.add_node(StaticNode(sim, Vec2(float(index), 0), name=f"s{index}"))
    inserted = manager.substrate.grid.update_calls
    assert inserted == 3
    sim.run(until=1.0)
    ticks = manager.substrate.commit_count
    assert ticks == 10
    assert manager.substrate.grid.update_calls == inserted + ticks * 3
    assert manager.neighbors_within("s0", 5.0) == ["s1", "s2"]
    assert manager.nodes_within(Vec2(0, 0), 1.5) == ["s0", "s1"]

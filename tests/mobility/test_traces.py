"""Tests for trajectory traces and contact intervals."""

import pytest

from repro.geometry.vector import Vec2
from repro.mobility.traces import TrajectoryTrace, contact_intervals


def build_trace(name, samples):
    trace = TrajectoryTrace(name)
    for time, x, y in samples:
        trace.record(time, Vec2(x, y), speed=1.0)
    return trace


def test_record_and_interpolate():
    trace = build_trace("a", [(0, 0, 0), (10, 100, 0)])
    assert trace.position_at(5.0) == Vec2(50, 0)
    assert trace.position_at(-1.0) == Vec2(0, 0)
    assert trace.position_at(20.0) == Vec2(100, 0)


def test_times_must_not_decrease():
    trace = TrajectoryTrace("a")
    trace.record(1.0, Vec2(0, 0))
    with pytest.raises(ValueError):
        trace.record(0.5, Vec2(1, 1))


def test_distance_duration_speed():
    trace = build_trace("a", [(0, 0, 0), (10, 30, 40)])
    assert trace.total_distance() == 50.0
    assert trace.duration() == 10.0
    assert trace.mean_speed() == 5.0


def test_empty_trace_behaviour():
    trace = TrajectoryTrace("empty")
    assert trace.position_at(1.0) is None
    assert trace.mean_speed() == 0.0
    assert trace.to_rows() == []


def test_contact_intervals_detects_encounter():
    # Node b approaches a, stays close, then leaves.
    a = build_trace("a", [(0, 0, 0), (30, 0, 0)])
    b = build_trace("b", [(0, 200, 0), (10, 50, 0), (20, 50, 0), (30, 200, 0)])
    intervals = contact_intervals(a, b, radius=100.0)
    assert len(intervals) == 1
    start, end = intervals[0]
    assert start <= 10.0
    assert end >= 20.0


def test_contact_intervals_empty_when_never_close():
    a = build_trace("a", [(0, 0, 0), (10, 0, 0)])
    b = build_trace("b", [(0, 1000, 0), (10, 1000, 0)])
    assert contact_intervals(a, b, radius=100.0) == []

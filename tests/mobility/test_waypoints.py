"""Tests for static and random-waypoint nodes."""

import numpy as np
import pytest

from repro.geometry.vector import Vec2
from repro.mobility.waypoints import RandomWaypointNode, StaticNode
from repro.simcore.simulator import Simulator


def test_static_node_never_moves():
    sim = Simulator()
    node = StaticNode(sim, Vec2(5, 5))
    node.advance(10.0)
    assert node.position == Vec2(5, 5)
    assert node.velocity == Vec2(0, 0)
    assert node.predicted_position(100.0) == Vec2(5, 5)


def test_random_waypoint_stays_in_bounds():
    sim = Simulator()
    rng = np.random.default_rng(1)
    node = RandomWaypointNode(sim, bounds=(0, 0, 100, 50), rng=rng, pause_range=(0, 0))
    for _ in range(2000):
        node.advance(0.1)
        assert 0 <= node.position.x <= 100
        assert 0 <= node.position.y <= 50


def test_random_waypoint_moves_over_time():
    sim = Simulator()
    rng = np.random.default_rng(2)
    node = RandomWaypointNode(
        sim, bounds=(0, 0, 100, 100), rng=rng, speed_range=(2.0, 3.0), pause_range=(0, 0)
    )
    start = node.position
    for _ in range(100):
        node.advance(0.1)
    assert node.position.distance_to(start) > 1.0


def test_random_waypoint_pauses_at_destination():
    sim = Simulator()
    rng = np.random.default_rng(3)
    node = RandomWaypointNode(
        sim,
        bounds=(0, 0, 10, 10),
        rng=rng,
        speed_range=(100.0, 100.0),   # reaches destination within one tick
        pause_range=(5.0, 5.0),
        start=Vec2(5, 5),
    )
    node.advance(1.0)           # arrives, starts pausing
    position_after_arrival = node.position
    node.advance(1.0)           # still paused
    assert node.position == position_after_arrival
    assert node.speed == 0.0


def test_random_waypoint_rejects_empty_bounds():
    sim = Simulator()
    with pytest.raises(ValueError):
        RandomWaypointNode(sim, bounds=(0, 0, 0, 10), rng=np.random.default_rng(0))


def test_advance_requires_positive_dt():
    sim = Simulator()
    node = RandomWaypointNode(sim, bounds=(0, 0, 10, 10), rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        node.advance(0.0)

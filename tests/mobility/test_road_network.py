"""Tests for road networks."""

import numpy as np
import pytest

from repro.geometry.vector import Vec2
from repro.mobility.road_network import RoadNetwork, manhattan_grid, single_intersection


def test_add_junction_and_road():
    net = RoadNetwork()
    net.add_junction("a", Vec2(0, 0))
    net.add_junction("b", Vec2(100, 0))
    net.add_road("a", "b", speed_limit=20.0)
    assert net.road_length("a", "b") == 100.0
    assert net.road_length("b", "a") == 100.0   # bidirectional by default
    assert net.speed_limit("a", "b") == 20.0
    assert "b" in net.neighbors("a")


def test_add_road_requires_existing_junctions():
    net = RoadNetwork()
    net.add_junction("a", Vec2(0, 0))
    with pytest.raises(KeyError):
        net.add_road("a", "missing")


def test_one_way_road():
    net = RoadNetwork()
    net.add_junction("a", Vec2(0, 0))
    net.add_junction("b", Vec2(10, 0))
    net.add_road("a", "b", bidirectional=False)
    assert net.neighbors("a") == ["b"]
    assert net.neighbors("b") == []


def test_shortest_path_prefers_shorter_route():
    net = RoadNetwork()
    net.add_junction("a", Vec2(0, 0))
    net.add_junction("b", Vec2(100, 0))
    net.add_junction("c", Vec2(50, 10))
    net.add_road("a", "b")
    net.add_road("a", "c")
    net.add_road("c", "b")
    assert net.shortest_path("a", "b") == ["a", "b"]


def test_manhattan_grid_structure():
    grid = manhattan_grid(rows=3, cols=4, spacing=100.0)
    assert len(grid.junctions) == 12
    assert grid.position_of("r0c0") == Vec2(0, 0)
    assert grid.position_of("r2c3") == Vec2(300, 200)
    path = grid.shortest_path("r0c0", "r2c3")
    assert len(path) - 1 == 5  # Manhattan distance in hops


def test_manhattan_grid_rejects_tiny_dimensions():
    with pytest.raises(ValueError):
        manhattan_grid(rows=1, cols=3)


def test_single_intersection_layout():
    net = single_intersection(arm_length=150.0)
    assert set(net.junctions) == {"center", "north", "south", "east", "west"}
    assert net.position_of("north") == Vec2(0, 150)
    assert net.shortest_path("south", "north") == ["south", "center", "north"]


def test_random_route_has_min_hops():
    grid = manhattan_grid(4, 4)
    rng = np.random.default_rng(0)
    for _ in range(5):
        path = grid.random_route(rng, min_hops=3)
        assert len(path) - 1 >= 3


def test_path_to_polyline_and_bounding_box():
    net = single_intersection(arm_length=100.0)
    polyline = net.path_to_polyline(["west", "center", "east"])
    assert polyline == [Vec2(-100, 0), Vec2(0, 0), Vec2(100, 0)]
    assert net.bounding_box() == (-100.0, -100.0, 100.0, 100.0)

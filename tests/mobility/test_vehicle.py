"""Tests for the kinematic vehicle model."""

import pytest

from repro.geometry.vector import Vec2
from repro.mobility.vehicle import Vehicle, VehicleParameters
from repro.simcore.simulator import Simulator


def make_vehicle(route, **kwargs):
    sim = Simulator()
    return sim, Vehicle(sim, route, **kwargs)


def test_vehicle_moves_toward_waypoint():
    _, vehicle = make_vehicle([Vec2(0, 0), Vec2(100, 0)], initial_speed=10.0)
    for _ in range(10):
        vehicle.advance(0.1)
    assert vehicle.position.x > 5.0
    assert vehicle.position.y == pytest.approx(0.0)
    assert vehicle.heading == Vec2(1.0, 0.0)


def test_vehicle_accelerates_up_to_max_speed():
    params = VehicleParameters(max_speed=10.0, max_acceleration=2.0)
    _, vehicle = make_vehicle([Vec2(0, 0), Vec2(1000, 0)], params=params)
    for _ in range(100):
        vehicle.advance(0.1)
    assert vehicle.speed == pytest.approx(10.0)


def test_vehicle_finishes_route_and_stops():
    _, vehicle = make_vehicle([Vec2(0, 0), Vec2(20, 0)], initial_speed=10.0)
    for _ in range(200):
        vehicle.advance(0.1)
    assert vehicle.finished
    assert vehicle.speed == 0.0
    assert vehicle.position == Vec2(20, 0)
    assert vehicle.remaining_route_length() == 0.0


def test_vehicle_turns_at_waypoints():
    _, vehicle = make_vehicle(
        [Vec2(0, 0), Vec2(10, 0), Vec2(10, 10)], initial_speed=5.0
    )
    for _ in range(400):
        vehicle.advance(0.05)
        if vehicle.finished:
            break
    assert vehicle.finished
    assert vehicle.position == Vec2(10, 10)


def test_loop_route_never_finishes():
    _, vehicle = make_vehicle(
        [Vec2(0, 0), Vec2(10, 0), Vec2(10, 10), Vec2(0, 10)],
        initial_speed=5.0,
        loop_route=True,
    )
    for _ in range(1000):
        vehicle.advance(0.1)
    assert not vehicle.finished
    assert vehicle.distance_travelled > 100.0


def test_predicted_position_uses_constant_velocity():
    _, vehicle = make_vehicle([Vec2(0, 0), Vec2(1000, 0)], initial_speed=10.0)
    vehicle.advance(0.1)
    predicted = vehicle.predicted_position(2.0)
    assert predicted.x == pytest.approx(vehicle.position.x + vehicle.speed * 2.0)


def test_single_waypoint_vehicle_is_finished():
    _, vehicle = make_vehicle([Vec2(5, 5)])
    assert vehicle.finished
    vehicle.advance(1.0)
    assert vehicle.position == Vec2(5, 5)


def test_invalid_inputs():
    sim = Simulator()
    with pytest.raises(ValueError):
        Vehicle(sim, [])
    _, vehicle = make_vehicle([Vec2(0, 0), Vec2(10, 0)])
    with pytest.raises(ValueError):
        vehicle.advance(0.0)

"""Tests for neighbour tables."""

import pytest

from repro.geometry.vector import Vec2
from repro.mesh.messages import Beacon
from repro.mesh.neighbor import NeighborTable


def beacon_from(name, time=0.0):
    return Beacon(sender=name, timestamp=time, position=Vec2(0, 0), velocity=Vec2(0, 0))


def test_observe_new_neighbor_returns_true_once():
    table = NeighborTable("me", lifetime=3.0)
    assert table.observe(beacon_from("a"), now=0.0) is True
    assert table.observe(beacon_from("a", 1.0), now=1.0) is False
    assert len(table) == 1
    assert "a" in table
    entry = table.entry("a")
    assert entry.beacons_received == 2
    assert entry.beacon.timestamp == 1.0


def test_own_beacons_are_ignored():
    table = NeighborTable("me")
    assert table.observe(beacon_from("me"), now=0.0) is False
    assert len(table) == 0


def test_expiry_removes_silent_neighbors():
    table = NeighborTable("me", lifetime=2.0)
    table.observe(beacon_from("a"), now=0.0)
    table.observe(beacon_from("b"), now=1.5)
    expired = table.expire(now=3.0)
    assert expired == ["a"]
    assert table.names() == ["b"]


def test_entry_age_and_contact_duration():
    table = NeighborTable("me", lifetime=10.0)
    table.observe(beacon_from("a", 0.0), now=0.0)
    table.observe(beacon_from("a", 4.0), now=4.0)
    entry = table.entry("a")
    assert entry.age(5.0) == 1.0
    assert entry.contact_duration(5.0) == 5.0


def test_remove_and_clear():
    table = NeighborTable("me")
    table.observe(beacon_from("a"), now=0.0)
    table.observe(beacon_from("b"), now=0.0)
    table.remove("a")
    assert table.names() == ["b"]
    table.clear()
    assert len(table) == 0


def test_invalid_lifetime_rejected():
    with pytest.raises(ValueError):
        NeighborTable("me", lifetime=0.0)

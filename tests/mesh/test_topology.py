"""Tests for topology snapshots and the observer."""

from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.mesh.topology import TopologyObserver
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def build(positions):
    sim = Simulator(seed=2)
    env = RadioEnvironment(sim, LinkBudget())
    agents = []
    for name, pos in positions.items():
        iface = env.attach(name, lambda p=pos: p)
        agents.append(
            BeaconAgent(sim, iface, lambda p=pos: (p, Vec2(0, 0)), beacon_period=0.4)
        )
    observer = TopologyObserver(sim, agents, period=1.0)
    return sim, observer


def test_chain_topology_is_connected():
    # a -- b -- c with a and c out of range of each other.
    sim, observer = build({"a": Vec2(0, 0), "b": Vec2(150, 0), "c": Vec2(300, 0)})
    sim.run(until=4.0)
    snapshot = observer.latest()
    assert snapshot is not None
    assert snapshot.node_count == 3
    assert snapshot.is_connected()
    assert snapshot.largest_component_size() == 3
    assert snapshot.edge_count == 2
    assert snapshot.mean_degree() > 1.0


def test_isolated_node_forms_own_component():
    sim, observer = build({"a": Vec2(0, 0), "b": Vec2(60, 0), "far": Vec2(9000, 0)})
    sim.run(until=4.0)
    snapshot = observer.latest()
    components = snapshot.components()
    assert len(components) == 2
    assert {"far"} in components
    assert not snapshot.is_connected()


def test_formation_time_detected():
    sim, observer = build({"a": Vec2(0, 0), "b": Vec2(60, 0)})
    sim.run(until=5.0)
    formation = observer.formation_time(min_size=2)
    assert formation is not None
    assert formation <= 3.0


def test_link_lifetimes_recorded_when_node_stops():
    sim = Simulator(seed=2)
    env = RadioEnvironment(sim, LinkBudget())
    pos = {"a": Vec2(0, 0), "b": Vec2(60, 0)}
    agents = []
    for name, p in pos.items():
        iface = env.attach(name, lambda q=p: q)
        agents.append(BeaconAgent(sim, iface, lambda q=p: (q, Vec2(0, 0)), beacon_period=0.4,
                                  neighbor_lifetime=1.5))
    observer = TopologyObserver(sim, agents, period=0.5)
    sim.run(until=4.0)
    agents[1].stop()
    env.interface_of("b").enabled = False
    sim.run(until=12.0)
    assert observer.mean_link_lifetime() > 0.0


def test_empty_observer_has_no_snapshot_stats():
    sim = Simulator()
    observer = TopologyObserver(sim, [], period=1.0)
    snapshot = observer.take_snapshot()
    assert snapshot.node_count == 0
    assert snapshot.largest_component_size() == 0
    assert not snapshot.is_connected()
    assert observer.mean_link_lifetime() == 0.0

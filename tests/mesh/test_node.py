"""Tests for the bundled MeshNode stack."""

from repro.geometry.vector import Vec2
from repro.mesh.node import MeshNode
from repro.mobility.vehicle import Vehicle
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def build_pair(distance=50.0):
    sim = Simulator(seed=6)
    env = RadioEnvironment(sim, LinkBudget())
    a = MeshNode(sim, env, StaticNode(sim, Vec2(0, 0), name="a"))
    b = MeshNode(sim, env, StaticNode(sim, Vec2(distance, 0), name="b"))
    return sim, env, a, b


def test_mesh_nodes_discover_and_exchange():
    sim, env, a, b = build_pair()
    sim.run(until=2.0)
    assert "b" in a.neighbors.names()
    assert b.membership.is_member("a")
    received = []
    b.on_receive(lambda src, kind, payload, size: received.append(payload))
    a.send_reliable("b", "hello", 600)
    sim.run(until=4.0)
    assert received == ["hello"]


def test_beacon_carries_velocity_of_moving_vehicle():
    sim = Simulator(seed=7)
    env = RadioEnvironment(sim, LinkBudget())
    from repro.mobility.manager import MobilityManager

    manager = MobilityManager(sim, tick=0.1)
    vehicle = Vehicle(sim, [Vec2(0, 0), Vec2(500, 0)], name="v", initial_speed=10.0)
    manager.add_node(vehicle)
    moving = MeshNode(sim, env, vehicle)
    static = MeshNode(sim, env, StaticNode(sim, Vec2(30, 0), name="s"))
    sim.run(until=3.0)
    entry = static.neighbors.entry("v")
    assert entry is not None
    assert entry.beacon.velocity.x > 0.0


def test_shutdown_removes_node_from_mesh_after_expiry():
    sim, env, a, b = build_pair()
    sim.run(until=2.0)
    assert "b" in a.neighbors.names()
    b.shutdown()
    sim.run(until=10.0)
    assert "b" not in a.neighbors.names()

"""Tests for greedy geographic routing."""

from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.mesh.messages import DataMessage
from repro.mesh.routing import GreedyGeoRouter
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def build(positions):
    sim = Simulator(seed=3)
    env = RadioEnvironment(sim, LinkBudget())
    routers = {}
    for name, pos in positions.items():
        iface = env.attach(name, lambda p=pos: p)
        agent = BeaconAgent(sim, iface, lambda p=pos: (p, Vec2(0, 0)), beacon_period=0.4)
        routers[name] = GreedyGeoRouter(sim, iface, agent.neighbors, lambda p=pos: p)
    return sim, routers


def test_direct_neighbor_delivery():
    sim, routers = build({"a": Vec2(0, 0), "b": Vec2(60, 0)})
    sim.run(until=2.0)   # let discovery settle
    received = []
    routers["b"].on_deliver(lambda message: received.append(message.payload))
    routers["a"].send(DataMessage("a", "b", "data", "payload", 500))
    sim.run(until=3.0)
    assert received == ["payload"]
    assert routers["b"].messages_delivered == 1


def test_multi_hop_delivery_through_chain():
    # a can only reach c through b.
    sim, routers = build({"a": Vec2(0, 0), "b": Vec2(180, 0), "c": Vec2(360, 0)})
    sim.run(until=2.5)
    received = []
    routers["c"].on_deliver(lambda message: received.append(message))
    routers["a"].send(DataMessage("a", "c", "data", "hop-hop", 500, hop_limit=5))
    sim.run(until=4.0)
    assert len(received) == 1
    assert received[0].payload == "hop-hop"
    assert received[0].hops_taken >= 1


def test_message_to_unknown_destination_without_neighbors_is_dropped():
    sim, routers = build({"a": Vec2(0, 0)})
    sim.run(until=1.0)
    ok = routers["a"].send(DataMessage("a", "ghost", "data", None, 100))
    assert ok is False
    assert routers["a"].messages_dropped == 1


def test_ttl_exhaustion_drops_message():
    sim, routers = build({"a": Vec2(0, 0), "b": Vec2(60, 0)})
    sim.run(until=2.0)
    ok = routers["a"].send(DataMessage("a", "b", "data", None, 100, hop_limit=0))
    assert ok is False
    assert sim.monitor.counter_value("mesh.routing_drops_ttl") == 1


def test_local_delivery_short_circuits():
    sim, routers = build({"a": Vec2(0, 0)})
    received = []
    routers["a"].on_deliver(lambda m: received.append(m.payload))
    routers["a"].send(DataMessage("a", "a", "data", "self", 10))
    assert received == ["self"]


def test_duplicate_deliveries_suppressed():
    sim, routers = build({"a": Vec2(0, 0), "b": Vec2(60, 0)})
    sim.run(until=2.0)
    received = []
    routers["b"].on_deliver(lambda m: received.append(m.payload))
    message = DataMessage("a", "b", "data", "once", 100)
    routers["a"].send(message)
    routers["a"].send(message)   # identical message id resent
    sim.run(until=3.0)
    assert received == ["once"]

"""Tests for the reliable fragmenting transport."""

import pytest

from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.mesh.routing import GreedyGeoRouter
from repro.mesh.transport import ReliableTransport
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def build(positions, **transport_kwargs):
    sim = Simulator(seed=4)
    env = RadioEnvironment(sim, LinkBudget())
    transports = {}
    for name, pos in positions.items():
        iface = env.attach(name, lambda p=pos: p)
        agent = BeaconAgent(sim, iface, lambda p=pos: (p, Vec2(0, 0)), beacon_period=0.4)
        router = GreedyGeoRouter(sim, iface, agent.neighbors, lambda p=pos: p)
        transports[name] = ReliableTransport(sim, router, **transport_kwargs)
    return sim, transports


def test_small_payload_round_trip():
    sim, transports = build({"a": Vec2(0, 0), "b": Vec2(50, 0)})
    sim.run(until=2.0)
    received = []
    outcomes = []
    transports["b"].on_receive(lambda src, kind, payload, size: received.append((src, kind, payload)))
    transports["a"].send("b", {"value": 7}, 800, kind="task",
                         on_complete=lambda ok, transfer: outcomes.append(ok))
    sim.run(until=5.0)
    assert received == [("a", "task", {"value": 7})]
    assert outcomes == [True]
    assert transports["a"].transfers_succeeded == 1


def test_large_payload_is_fragmented_and_reassembled():
    sim, transports = build({"a": Vec2(0, 0), "b": Vec2(50, 0)}, mtu=1000)
    sim.run(until=2.0)
    sizes = []
    transports["b"].on_receive(lambda src, kind, payload, size: sizes.append(size))
    transports["a"].send("b", "big-object", 25_000, kind="result")
    sim.run(until=6.0)
    assert len(sizes) == 1
    assert sizes[0] >= 25_000 * 0.9


def test_transfer_to_unreachable_destination_fails_after_retries():
    sim, transports = build({"a": Vec2(0, 0), "lonely": Vec2(9000, 0)},
                            ack_timeout=0.5, max_attempts=2)
    sim.run(until=1.0)
    outcomes = []
    transfer = transports["a"].send("lonely", "x", 500,
                                    on_complete=lambda ok, t: outcomes.append(ok))
    sim.run(until=10.0)
    assert outcomes == [False]
    assert transfer.attempts == 2
    assert transports["a"].transfers_failed == 1


def test_transfer_latency_recorded():
    sim, transports = build({"a": Vec2(0, 0), "b": Vec2(50, 0)})
    sim.run(until=2.0)
    done = []
    transports["a"].send("b", "x", 2000, on_complete=lambda ok, t: done.append(t))
    sim.run(until=5.0)
    assert done and done[0].latency() is not None
    assert done[0].latency() > 0.0


def test_invalid_parameters_rejected():
    sim, transports = build({"a": Vec2(0, 0), "b": Vec2(50, 0)})
    with pytest.raises(ValueError):
        ReliableTransport(sim, transports["a"].router, mtu=0)
    with pytest.raises(ValueError):
        ReliableTransport(sim, transports["a"].router, max_attempts=0)

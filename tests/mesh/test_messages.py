"""Tests for mesh message formats."""

from repro.geometry.vector import Vec2
from repro.mesh.messages import Beacon, DataMessage


def test_beacon_predicted_position_extrapolates():
    beacon = Beacon(
        sender="a",
        timestamp=10.0,
        position=Vec2(0, 0),
        velocity=Vec2(5, 0),
    )
    assert beacon.predicted_position(12.0) == Vec2(10, 0)
    # Prediction never goes backwards in time.
    assert beacon.predicted_position(5.0) == Vec2(0, 0)


def test_beacon_age():
    beacon = Beacon(sender="a", timestamp=10.0, position=Vec2(0, 0), velocity=Vec2(0, 0))
    assert beacon.age(12.5) == 2.5
    assert beacon.age(9.0) == 0.0


def test_data_message_ids_are_unique():
    a = DataMessage("s", "d", "task", None, 100)
    b = DataMessage("s", "d", "task", None, 100)
    assert a.message_id != b.message_id


def test_next_hop_copy_decrements_ttl_and_counts_hops():
    message = DataMessage("s", "d", "task", {"x": 1}, 100, hop_limit=3)
    hop1 = message.next_hop_copy()
    hop2 = hop1.next_hop_copy()
    assert hop1.hop_limit == 2
    assert hop2.hop_limit == 1
    assert hop2.hops_taken == 2
    assert hop2.message_id == message.message_id
    assert hop2.payload == {"x": 1}

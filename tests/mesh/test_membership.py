"""Tests for asynchronous mesh membership views."""

from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.mesh.membership import MeshMembership
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def build(positions, lifetime=1.5):
    sim = Simulator(seed=11)
    env = RadioEnvironment(sim, LinkBudget())
    memberships = {}
    agents = {}
    for name, pos in positions.items():
        iface = env.attach(name, lambda p=pos: p)
        agent = BeaconAgent(
            sim, iface, lambda p=pos: (p, Vec2(0, 0)), beacon_period=0.4, neighbor_lifetime=lifetime
        )
        agents[name] = agent
        memberships[name] = MeshMembership(sim, agent)
    return sim, agents, memberships


def test_view_includes_self_and_neighbors():
    sim, agents, memberships = build({"a": Vec2(0, 0), "b": Vec2(40, 0), "c": Vec2(80, 0)})
    sim.run(until=3.0)
    view = memberships["a"].members()
    assert "a" in view
    assert "b" in view
    assert memberships["a"].size() >= 2
    assert memberships["a"].is_member("b")


def test_join_and_leave_events_recorded():
    sim, agents, memberships = build({"a": Vec2(0, 0), "b": Vec2(40, 0)})
    sim.run(until=2.0)
    assert memberships["a"].stats.joins == 1
    agents["b"].stop()
    sim.run(until=8.0)
    assert memberships["a"].stats.leaves == 1
    assert memberships["a"].stats.contact_durations
    assert memberships["a"].stats.mean_contact_duration() > 0
    kinds = [event.kind for event in memberships["a"].events]
    assert kinds == ["join", "leave"]


def test_epochs_advance_per_node_independently():
    sim, agents, memberships = build({"a": Vec2(0, 0), "b": Vec2(40, 0), "c": Vec2(3000, 0)})
    sim.run(until=3.0)
    assert memberships["a"].epoch >= 1
    assert memberships["c"].epoch == 0   # isolated node never changes its view


def test_view_age_reports_staleness():
    sim, agents, memberships = build({"a": Vec2(0, 0), "b": Vec2(40, 0)})
    sim.run(until=2.0)
    age = memberships["a"].view_age("b")
    assert age is not None and age < 1.0
    assert memberships["a"].view_age("unknown") is None


def test_silent_peer_leaves_view_within_lifetime_despite_sweep_phase():
    """Regression: view queries must not report entries past the lifetime.

    Eviction (and the ``leave`` event) happens on the periodic expiry sweep,
    which fires every half lifetime — up to 1.5 lifetimes after the last
    beacon.  The *view* (``members`` / ``is_member`` / ``size``) must go
    stale-free after one lifetime regardless of sweep phase.
    """
    lifetime = 1.5
    sim, agents, memberships = build(
        {"a": Vec2(0, 0), "b": Vec2(40, 0)}, lifetime=lifetime
    )
    sim.run(until=2.0)
    assert memberships["a"].is_member("b")
    agents["b"].stop()
    silent_from = sim.now
    # One lifetime (plus slack for an in-flight beacon) later the view is
    # clean, even though the entry may still await its sweep ...
    sim.run(until=silent_from + lifetime + 0.2)
    assert not memberships["a"].is_member("b")
    assert memberships["a"].size() == 1
    assert "b" not in memberships["a"].members()
    # ... and the leave is counted by the next sweep at the latest.
    sim.run(until=silent_from + 1.5 * lifetime + 0.2)
    assert memberships["a"].stats.leaves == 1

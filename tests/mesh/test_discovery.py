"""Tests for asynchronous beaconing and neighbour discovery."""

from dataclasses import replace

from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def make_agents(positions, beacon_period=0.5, neighbor_lifetime=2.0):
    sim = Simulator(seed=5)
    env = RadioEnvironment(sim, LinkBudget())
    agents = {}
    for name, pos in positions.items():
        iface = env.attach(name, lambda p=pos: p)
        agents[name] = BeaconAgent(
            sim,
            iface,
            state_provider=lambda p=pos: (p, Vec2(0, 0)),
            beacon_period=beacon_period,
            neighbor_lifetime=neighbor_lifetime,
        )
    return sim, env, agents


def test_nodes_discover_each_other():
    sim, env, agents = make_agents({"a": Vec2(0, 0), "b": Vec2(60, 0)})
    sim.run(until=3.0)
    assert "b" in agents["a"].neighbors
    assert "a" in agents["b"].neighbors
    assert agents["a"].beacons_sent >= 4
    assert agents["a"].beacons_heard >= 4


def test_out_of_range_nodes_do_not_discover():
    sim, env, agents = make_agents({"a": Vec2(0, 0), "b": Vec2(5000, 0)})
    sim.run(until=3.0)
    assert len(agents["a"].neighbors) == 0


def test_neighbor_up_and_down_callbacks():
    sim, env, agents = make_agents({"a": Vec2(0, 0), "b": Vec2(50, 0)}, neighbor_lifetime=1.5)
    ups, downs = [], []
    agents["a"].on_neighbor_up(lambda name, beacon: ups.append(name))
    agents["a"].on_neighbor_down(lambda name: downs.append(name))
    sim.run(until=2.0)
    assert ups == ["b"]
    # Silence b: stop it beaconing and let a's table expire it.
    agents["b"].stop()
    sim.run(until=8.0)
    assert downs == ["b"]
    assert "b" not in agents["a"].neighbors


def test_epoch_increases_on_membership_changes():
    sim, env, agents = make_agents({"a": Vec2(0, 0), "b": Vec2(50, 0)})
    assert agents["a"].epoch == 0
    sim.run(until=2.0)
    assert agents["a"].epoch >= 1


def test_enricher_rewrites_outgoing_beacons():
    sim, env, agents = make_agents({"a": Vec2(0, 0), "b": Vec2(50, 0)})
    agents["a"].add_enricher(lambda beacon: replace(beacon, compute_headroom_ops=7e9))
    sim.run(until=2.0)
    entry = agents["b"].neighbors.entry("a")
    assert entry is not None
    assert entry.beacon.compute_headroom_ops == 7e9


def test_beacons_are_not_synchronised_across_nodes():
    sim, env, agents = make_agents({"a": Vec2(0, 0), "b": Vec2(50, 0), "c": Vec2(30, 30)})
    sim.run(until=5.0)
    # With per-node phase and jitter, send counts may differ slightly but all
    # nodes keep beaconing.
    counts = [agent.beacons_sent for agent in agents.values()]
    assert all(count >= 6 for count in counts)

"""Tests for the three description models."""

import pytest

from repro.core.models import (
    DataDescription,
    NeighborDescription,
    NetworkDescription,
    TaskDescription,
    TaskResult,
)
from repro.data.datatypes import DataType
from repro.geometry.vector import Vec2


def make_neighbor(name="n1", data_types=("lidar_scan",), headroom=1e9):
    return NeighborDescription(
        name=name,
        position=Vec2(10, 0),
        velocity=Vec2(0, 0),
        distance_m=10.0,
        link_rate_bps=10e6,
        link_snr_db=20.0,
        compute_headroom_ops=headroom,
        queue_length=0,
        data_summary={t: (80.0, 0.1, 0.9) for t in data_types},
        trust_score=0.9,
        beacon_age_s=0.2,
        predicted_contact_time_s=30.0,
    )


def test_task_description_validation_and_ids():
    a = TaskDescription(function_name="f")
    b = TaskDescription(function_name="f")
    assert a.task_id != b.task_id
    with pytest.raises(ValueError):
        TaskDescription(function_name="f", operations=0)
    with pytest.raises(ValueError):
        TaskDescription(function_name="f", redundancy=0)


def test_with_requester_preserves_identity():
    task = TaskDescription(function_name="f", parameters={"a": 1})
    stamped = task.with_requester("ego")
    assert stamped.requester == "ego"
    assert stamped.task_id == task.task_id
    assert stamped.parameters == {"a": 1}
    assert stamped.parameters is not task.parameters


def test_neighbor_description_has_data():
    neighbor = make_neighbor()
    assert neighbor.has_data(DataType.LIDAR_SCAN)
    assert not neighbor.has_data(DataType.CAMERA_FRAME)


def test_network_description_queries():
    neighbors = [make_neighbor("a", headroom=1e9), make_neighbor("b", data_types=(), headroom=2e9)]
    network = NetworkDescription(owner="me", time=1.0, position=Vec2(0, 0), neighbors=neighbors)
    assert len(network) == 2
    assert network.names() == ["a", "b"]
    assert network.neighbor("a").name == "a"
    assert network.neighbor("missing") is None
    assert network.total_headroom_ops() == 3e9
    assert [n.name for n in network.with_data(DataType.LIDAR_SCAN)] == ["a"]


def test_data_description_defaults():
    description = DataDescription()
    assert description.data_type == DataType.LIDAR_SCAN
    assert description.region_center is None


def test_task_result_fields():
    result = TaskResult(task_id=1, executor="a", success=True, value=42, total_latency_s=0.5)
    assert result.success and result.value == 42
    failed = TaskResult(task_id=2, executor="", success=False, failure_reason="no candidates")
    assert not failed.success and failed.failure_reason

"""Tests for the public facade."""

import pytest

from repro.core.api import AirDnDConfig, AirDnDNode, AirDnDOrchestrator
from repro.core.candidate import ScoringWeights
from repro.core.orchestrator import Orchestrator
from repro.core.task_model import build_task
from tests.conftest import make_static_airdnd_nodes


def test_airdnd_orchestrator_is_the_orchestrator():
    assert AirDnDOrchestrator is Orchestrator


def test_config_rejects_nonsensical_knob_values():
    # Swept knobs must fail fast at construction, not degenerate mid-run.
    for bad in (
        dict(beacon_period=0.0),
        dict(beacon_period=-1.0),
        dict(neighbor_lifetime=0.0),
        dict(min_trust=-0.1),
        dict(min_trust=1.1),
        dict(max_beacon_age_s=0.0),
        dict(offer_timeout=0.0),
        dict(max_attempts=0),
        dict(transfer_attempts=0),
    ):
        with pytest.raises(ValueError):
            AirDnDConfig(**bad)
    AirDnDConfig(beacon_period=0.1, min_trust=0.0)  # boundary values are fine
    AirDnDConfig(min_trust=1.0)


def test_config_builds_scorer_from_weights():
    config = AirDnDConfig(
        scoring_weights=ScoringWeights(compute=1, link=0, contact_time=0, data=0, trust=0),
        min_trust=0.5,
    )
    scorer = config.scorer()
    assert scorer.weights.compute == 1
    assert scorer.min_trust == 0.5


def test_beacons_carry_headroom_and_data_summary(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (40, 0)])
    a, b = nodes
    sim.run(until=2.0)
    entry = a.mesh.neighbors.entry(b.name)
    assert entry is not None
    assert entry.beacon.compute_headroom_ops > 0
    assert entry.beacon.trust_score == 1.0
    # No sensors attached, so the data digest is empty but present.
    assert entry.beacon.data_summary == {}


def test_submit_task_and_submit_function_equivalent(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (40, 0)])
    requester = nodes[0]
    sim.run(until=2.0)
    via_task = requester.submit_task(build_task(registry, "noop"))
    via_function = requester.submit_function("noop")
    sim.run(until=8.0)
    assert via_task.succeeded and via_function.succeeded
    assert len(requester.completed_tasks()) == 2


def test_byte_counters_exposed(two_nodes):
    requester, executor = two_nodes
    assert requester.bytes_sent() > 0        # beacons
    assert executor.bytes_received() > 0


def test_node_name_follows_mobile(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0)])
    assert nodes[0].name == "node-0"
    assert nodes[0].position.x == 0.0

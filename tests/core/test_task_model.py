"""Tests for Model 2 helpers."""

import pytest

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.task_model import (
    TaskValidationError,
    build_task,
    estimate_description_size,
    requirement_of,
    validate_task,
)


@pytest.fixture
def registry():
    reg = FunctionRegistry()
    reg.register(
        FunctionDefinition(
            name="scaled",
            body=lambda p, d: p.get("n", 0),
            cost_model=lambda p: 1e6 * float(p.get("n", 1)),
            memory_mb=100.0,
        )
    )
    return reg


def test_build_task_fills_cost_from_catalogue(registry):
    task = build_task(registry, "scaled", parameters={"n": 50}, deadline_s=1.5)
    assert task.operations == 5e7
    assert task.memory_mb == 100.0
    assert task.deadline_s == 1.5
    assert task.size_bytes == estimate_description_size({"n": 50})


def test_build_task_unknown_function_rejected(registry):
    with pytest.raises(TaskValidationError):
        build_task(registry, "unknown")


def test_validate_accepts_consistent_cost(registry):
    task = build_task(registry, "scaled", parameters={"n": 10})
    validate_task(registry, task)   # should not raise


def test_validate_rejects_wildly_underdeclared_cost(registry):
    task = build_task(registry, "scaled", parameters={"n": 1000})
    task.operations = 1e4   # 100000x below the catalogue estimate
    with pytest.raises(TaskValidationError):
        validate_task(registry, task)


def test_validate_rejects_unknown_function(registry):
    task = build_task(registry, "scaled")
    task.function_name = "not-in-catalogue"
    with pytest.raises(TaskValidationError):
        validate_task(registry, task)


def test_requirement_of_translates_fields(registry):
    task = build_task(registry, "scaled", parameters={"n": 10}, deadline_s=2.0)
    requirement = requirement_of(task)
    assert requirement.operations == task.operations
    assert requirement.memory_mb == task.memory_mb
    assert requirement.deadline == 2.0


def test_description_size_grows_with_parameters():
    assert estimate_description_size({"a": 1, "b": 2}) > estimate_description_size({})

"""Tests for Model 3 matching."""

from repro.core.data_model import (
    beacon_digest_matches,
    digest_quality_score,
    local_data_score,
    pond_satisfies,
)
from repro.core.models import DataDescription, NeighborDescription
from repro.data.datatypes import DataType
from repro.data.pond import DataPond
from repro.data.quality import DataQuality
from repro.data.sensors import Detection, SensorFrame
from repro.geometry.vector import Vec2


def neighbor_with_digest(digest, position=Vec2(0, 0)):
    return NeighborDescription(
        name="n",
        position=position,
        velocity=Vec2(0, 0),
        distance_m=10.0,
        link_rate_bps=1e7,
        link_snr_db=20.0,
        compute_headroom_ops=1e9,
        queue_length=0,
        data_summary=digest,
        trust_score=1.0,
        beacon_age_s=0.1,
        predicted_contact_time_s=60.0,
    )


def fresh_description(region_center=None):
    return DataDescription(
        data_type=DataType.LIDAR_SCAN,
        required_quality=DataQuality(freshness_s=1.0, coverage_radius_m=30.0, resolution=0.5, accuracy=0.5),
        region_center=region_center,
        region_radius=20.0,
    )


def test_digest_match_requires_type_present():
    neighbor = neighbor_with_digest({})
    assert not beacon_digest_matches(neighbor, fresh_description())
    assert digest_quality_score(neighbor, fresh_description()) == 0.0


def test_digest_match_accepts_good_advertisement():
    neighbor = neighbor_with_digest({"lidar_scan": (80.0, 0.2, 0.8)})
    assert beacon_digest_matches(neighbor, fresh_description())
    assert digest_quality_score(neighbor, fresh_description()) == 0.8


def test_digest_match_rejects_low_quality_or_stale():
    low_quality = neighbor_with_digest({"lidar_scan": (80.0, 0.2, 0.05)})
    stale = neighbor_with_digest({"lidar_scan": (80.0, 10.0, 0.9)})
    assert not beacon_digest_matches(low_quality, fresh_description())
    assert not beacon_digest_matches(stale, fresh_description())


def test_digest_match_checks_region_reachability():
    near = neighbor_with_digest({"lidar_scan": (80.0, 0.2, 0.9)}, position=Vec2(0, 0))
    far = neighbor_with_digest({"lidar_scan": (30.0, 0.2, 0.9)}, position=Vec2(500, 0))
    description = fresh_description(region_center=Vec2(50, 0))
    assert beacon_digest_matches(near, description)
    assert not beacon_digest_matches(far, description)


def pond_with_frame(time=1.0):
    pond = DataPond("n")
    pond.store(
        SensorFrame(
            data_type=DataType.LIDAR_SCAN,
            timestamp=time,
            origin=Vec2(0, 0),
            detections=[Detection("x", Vec2(5, 0), 0.95)],
            range_m=80.0,
        )
    )
    return pond


def test_pond_satisfies_none_description_trivially():
    ok, reason = pond_satisfies(DataPond("n"), None, now=0.0)
    assert ok and reason == ""
    assert local_data_score(DataPond("n"), None, now=0.0) == 1.0


def test_pond_satisfies_good_data():
    ok, reason = pond_satisfies(pond_with_frame(), fresh_description(), now=1.2)
    assert ok, reason
    assert local_data_score(pond_with_frame(), fresh_description(), now=1.2) > 0.0


def test_pond_rejects_missing_or_stale_data():
    ok, reason = pond_satisfies(DataPond("n"), fresh_description(), now=1.0)
    assert not ok and "no lidar_scan" in reason
    stale_ok, stale_reason = pond_satisfies(pond_with_frame(time=0.0), fresh_description(), now=50.0)
    assert not stale_ok
    assert local_data_score(DataPond("n"), fresh_description(), now=1.0) == 0.0


def test_pond_region_out_of_reach_rejected():
    description = fresh_description(region_center=Vec2(500, 0))
    ok, _ = pond_satisfies(pond_with_frame(), description, now=1.2)
    assert not ok
    assert local_data_score(pond_with_frame(), description, now=1.2) == 0.0

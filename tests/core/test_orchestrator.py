"""Tests for the requester-side orchestrator."""

import pytest

from repro.baselines.local_only import LocalOnlyPlacement
from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.api import AirDnDConfig, AirDnDNode
from repro.core.lifecycle import TaskState
from repro.core.task_model import build_task
from repro.geometry.vector import Vec2
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator
from tests.conftest import make_static_airdnd_nodes


def test_offload_happy_path(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester, executor = nodes
    sim.run(until=2.0)
    results = []
    lifecycle = requester.submit_function("noop", on_result=lambda r: results.append(r))
    sim.run(until=8.0)
    assert lifecycle.state == TaskState.COMPLETED
    assert lifecycle.succeeded
    assert results[0].value == 42
    assert results[0].executor == executor.name
    assert results[0].total_latency_s > 0
    assert requester.orchestrator.success_rate() == 1.0


def test_isolated_node_falls_back_to_local_execution(sim, environment, registry):
    node = make_static_airdnd_nodes(sim, environment, registry, [(0, 0)])[0]
    sim.run(until=2.0)
    results = []
    lifecycle = node.submit_function("noop", on_result=lambda r: results.append(r))
    sim.run(until=6.0)
    assert lifecycle.succeeded
    assert results[0].executor == node.name
    assert lifecycle.state == TaskState.COMPLETED
    assert TaskState.EXECUTING_LOCALLY in [state for _, state in lifecycle.history]


def test_local_fallback_disabled_fails_when_isolated(sim, environment, registry):
    config = AirDnDConfig(allow_local_fallback=False)
    node = make_static_airdnd_nodes(sim, environment, registry, [(0, 0)], config=config)[0]
    sim.run(until=2.0)
    lifecycle = node.submit_function("noop")
    sim.run(until=6.0)
    assert lifecycle.state == TaskState.FAILED
    assert not lifecycle.succeeded
    assert "fallback" in lifecycle.result.failure_reason


def test_submission_before_any_beacons_uses_local_path(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester = nodes[0]
    # Submit immediately: the neighbour table is still empty.
    lifecycle = requester.submit_function("noop")
    sim.run(until=6.0)
    assert lifecycle.succeeded
    assert lifecycle.result.executor == requester.name


def test_executor_departure_triggers_retry_then_local(sim, environment, registry):
    config = AirDnDConfig(offer_timeout=1.0)
    nodes = make_static_airdnd_nodes(
        sim, environment, registry, [(0, 0), (60, 0)], config=config
    )
    requester, executor = nodes
    sim.run(until=2.0)
    assert executor.name in requester.mesh.neighbors.names()
    # The executor vanishes (drives away / crashes) before the task arrives.
    executor.shutdown()
    lifecycle = requester.submit_function("noop")
    sim.run(until=20.0)
    assert lifecycle.is_terminal
    assert lifecycle.succeeded
    assert lifecycle.result.executor == requester.name   # finished locally
    assert lifecycle.attempts >= 2
    assert requester.trust.score_of(executor.name) < requester.trust.config.initial_score


def test_redundant_execution_collects_multiple_replicas(sim, environment, registry):
    nodes = make_static_airdnd_nodes(
        sim, environment, registry, [(0, 0), (40, 0), (0, 40)]
    )
    requester = nodes[0]
    sim.run(until=2.0)
    results = []
    lifecycle = requester.submit_function(
        "noop", redundancy=2, on_result=lambda r: results.append(r)
    )
    sim.run(until=10.0)
    assert lifecycle.succeeded
    assert results[0].value == 42
    assert len(lifecycle.executors_tried) >= 2


def test_redundancy_voting_rejects_minority_corruption(sim, environment, registry):
    requester = make_static_airdnd_nodes(sim, environment, registry, [(0, 0)])[0]
    honest = AirDnDNode(
        sim, environment, StaticNode(sim, Vec2(40, 0), name="honest"), registry
    )
    honest2 = AirDnDNode(
        sim, environment, StaticNode(sim, Vec2(0, 40), name="honest2"), registry
    )
    evil = AirDnDNode(
        sim,
        environment,
        StaticNode(sim, Vec2(40, 40), name="evil"),
        registry,
        result_corruptor=lambda value: 666,
    )
    sim.run(until=2.0)
    results = []
    lifecycle = requester.submit_function(
        "noop", redundancy=3, on_result=lambda r: results.append(r)
    )
    sim.run(until=15.0)
    assert lifecycle.succeeded
    assert results[0].value == 42        # the corrupted 666 lost the vote
    assert requester.trust.score_of("evil") < requester.trust.score_of("honest") or \
        "evil" not in lifecycle.executors_tried


def test_local_only_placement_never_offloads(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester = nodes[0]
    requester.orchestrator.placement = LocalOnlyPlacement()
    sim.run(until=2.0)
    lifecycle = requester.submit_function("noop")
    sim.run(until=6.0)
    assert lifecycle.succeeded
    assert lifecycle.result.executor == requester.name


def test_network_description_reflects_neighbors(two_nodes):
    requester, executor = two_nodes
    description = requester.network_description()
    assert executor.name in description.names()
    neighbor = description.neighbor(executor.name)
    assert neighbor.compute_headroom_ops > 0

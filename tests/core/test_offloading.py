"""Tests for the executor-side offloading agent."""

import pytest

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.api import AirDnDConfig
from repro.core.models import DataDescription, TaskDescription
from repro.core.offloading import TaskOffer, TaskReject, TaskResultMessage
from repro.core.task_model import build_task
from repro.data.datatypes import DataType
from repro.data.quality import DataQuality
from tests.conftest import make_static_airdnd_nodes


def offer_for(task, requester, at):
    return TaskOffer(task=task, requester=requester, sent_at=at)


def test_executor_runs_offer_and_returns_result(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester, executor = nodes
    sim.run(until=2.0)
    results = []
    requester.mesh.on_receive(
        lambda src, kind, payload, size: results.append((kind, payload))
        if kind == "airdnd.result"
        else None
    )
    task = build_task(registry, "noop").with_requester(requester.name)
    requester.mesh.send_reliable(
        executor.name, offer_for(task, requester.name, sim.now), 600, kind="airdnd.offer"
    )
    sim.run(until=6.0)
    result_messages = [p for k, p in results if isinstance(p, TaskResultMessage)]
    assert len(result_messages) == 1
    assert result_messages[0].value == 42
    assert result_messages[0].executor == executor.name
    assert executor.executor.offers_accepted == 1
    assert executor.executor.results_sent == 1


def test_executor_rejects_unknown_function(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester, executor = nodes
    sim.run(until=2.0)
    rejects = []
    requester.mesh.on_receive(
        lambda src, kind, payload, size: rejects.append(payload)
        if kind == "airdnd.reject"
        else None
    )
    bogus = TaskDescription(function_name="not-registered", requester=requester.name)
    requester.mesh.send_reliable(
        executor.name, offer_for(bogus, requester.name, sim.now), 600, kind="airdnd.offer"
    )
    sim.run(until=6.0)
    assert len(rejects) == 1
    assert isinstance(rejects[0], TaskReject)
    assert "catalogue" in rejects[0].reason or "know" in rejects[0].reason
    assert executor.executor.offers_rejected == 1


def test_executor_rejects_when_data_missing(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester, executor = nodes
    sim.run(until=2.0)
    rejects = []
    requester.mesh.on_receive(
        lambda src, kind, payload, size: rejects.append(payload)
        if kind == "airdnd.reject"
        else None
    )
    task = build_task(
        registry,
        "noop",
        data=DataDescription(
            data_type=DataType.LIDAR_SCAN,
            required_quality=DataQuality(freshness_s=1.0, coverage_radius_m=10.0, resolution=0.5, accuracy=0.5),
        ),
    ).with_requester(requester.name)
    requester.mesh.send_reliable(
        executor.name, offer_for(task, requester.name, sim.now), 600, kind="airdnd.offer"
    )
    sim.run(until=6.0)
    assert len(rejects) == 1
    assert "data" in rejects[0].reason


def test_executor_rejects_when_queue_full(sim, environment, registry):
    config = AirDnDConfig(executor_max_queue=0)
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)], config=config)
    requester, executor = nodes
    sim.run(until=2.0)
    # Fill the executor's queue directly so queue_length >= max.
    from repro.compute.node import TaskExecution
    from repro.compute.resources import ResourceRequirement

    for _ in range(executor.compute.spec.cores + 1):
        executor.compute.submit(TaskExecution(ResourceRequirement(operations=5e10)))
    rejects = []
    requester.mesh.on_receive(
        lambda src, kind, payload, size: rejects.append(payload)
        if kind == "airdnd.reject"
        else None
    )
    task = build_task(registry, "noop").with_requester(requester.name)
    requester.mesh.send_reliable(
        executor.name, offer_for(task, requester.name, sim.now), 600, kind="airdnd.offer"
    )
    sim.run(until=6.0)
    assert len(rejects) == 1
    assert "queue" in rejects[0].reason


def test_malicious_executor_corrupts_result(sim, environment, registry):
    from repro.core.api import AirDnDNode
    from repro.geometry.vector import Vec2
    from repro.mobility.waypoints import StaticNode

    requester = make_static_airdnd_nodes(sim, environment, registry, [(0, 0)])[0]
    evil_mobile = StaticNode(sim, Vec2(50, 0), name="evil")
    evil = AirDnDNode(
        sim, environment, evil_mobile, registry, result_corruptor=lambda value: "corrupted"
    )
    sim.run(until=2.0)
    results = []
    requester.mesh.on_receive(
        lambda src, kind, payload, size: results.append(payload)
        if kind == "airdnd.result"
        else None
    )
    task = build_task(registry, "noop").with_requester(requester.name)
    requester.mesh.send_reliable(
        evil.name, offer_for(task, requester.name, sim.now), 600, kind="airdnd.offer"
    )
    sim.run(until=6.0)
    assert results and results[0].value == "corrupted"

"""Tests for RQ3: reputation, attestation and redundancy voting."""

import pytest

from repro.core.trust import TrustConfig, TrustManager


def test_initial_score_and_bounds():
    trust = TrustManager("me", TrustConfig(initial_score=0.6))
    assert trust.score_of("unknown") == 0.6
    for _ in range(50):
        trust.record_success("good")
    assert trust.score_of("good") == 1.0
    for _ in range(50):
        trust.record_failure("bad")
    assert trust.score_of("bad") == 0.0


def test_failure_hurts_more_than_success_helps():
    config = TrustConfig()
    assert config.failure_penalty > config.success_reward
    trust = TrustManager("me", config)
    trust.record_success("peer")
    trust.record_failure("peer")
    assert trust.score_of("peer") < config.initial_score


def test_lie_penalty_is_severe():
    trust = TrustManager("me")
    trust.record_lie("liar")
    assert trust.score_of("liar") <= 0.2


def test_trusted_peers_filter():
    trust = TrustManager("me")
    trust.record_success("good")
    trust.record_lie("bad")
    assert "good" in trust.trusted_peers(min_score=0.5)
    assert "bad" not in trust.trusted_peers(min_score=0.5)


def test_self_score_is_max():
    trust = TrustManager("me")
    assert trust.self_score() == trust.config.max_score


def test_attestation_round_trip():
    config = TrustConfig(require_attestation=True)
    requester = TrustManager("requester", config)
    assert requester.needs_attestation("peer")
    response = TrustManager.attestation_response("peer", nonce="n-1")
    assert requester.verify_attestation("peer", "n-1", response)
    assert not requester.needs_attestation("peer")


def test_attestation_failure_penalises():
    config = TrustConfig(require_attestation=True)
    requester = TrustManager("requester", config)
    assert not requester.verify_attestation("peer", "n-1", "wrong-digest")
    assert requester.score_of("peer") < config.initial_score


def test_vote_majority_wins_and_updates_reputation():
    trust = TrustManager("me")
    winner = trust.vote({"a": 10, "b": 10, "c": 99})
    assert winner == 10
    assert trust.score_of("a") > trust.score_of("c")


def test_vote_no_quorum_returns_none():
    trust = TrustManager("me", TrustConfig(redundancy_quorum=0.6))
    assert trust.vote({"a": 1, "b": 2}) is None


def test_vote_with_custom_comparator():
    trust = TrustManager("me")
    winner = trust.vote(
        {"a": 10.001, "b": 10.002, "c": 50.0},
        comparator=lambda x, y: abs(x - y) < 0.1,
    )
    assert winner == pytest.approx(10.001)


def test_vote_empty_returns_none():
    assert TrustManager("me").vote({}) is None


def test_single_result_vote_accepts():
    trust = TrustManager("me")
    assert trust.vote({"only": "value"}) == "value"


def test_two_way_tie_fails_instead_of_rewarding_arrival_order():
    # A 1-vs-1 disagreement used to be won by whichever result was recorded
    # first; a strict majority of 2 is 2, so it must fail.
    trust = TrustManager("me")
    assert trust.vote({"first": 1, "second": 2}) is None


def test_expected_replicas_raise_the_quorum_over_collected_results():
    # k=3 solicited but only one replica survived: a strict majority of 3
    # is 2, so the lone result must not be accepted unvetted — but the
    # responder is not penalised either: unanimity short of quorum proves
    # nothing against it (its peers may have crashed or been lost in
    # transit, and it may well be the honest one).
    trust = TrustManager("me")
    assert trust.vote({"sole": 666}, expected=3) is None
    assert trust.recorded_scores() == {}
    # ... while 2 agreeing replicas of the 3 solicited are a majority.
    trust = TrustManager("me")
    assert trust.vote({"a": 7, "b": 7}, expected=3) == 7


def test_no_quorum_with_disagreement_still_penalises_everyone():
    trust = TrustManager("me")
    assert trust.vote({"a": 1, "b": 2}) is None
    initial = trust.config.initial_score
    assert trust.score_of("a") < initial and trust.score_of("b") < initial


def test_unanimity_quorum_is_satisfiable():
    trust = TrustManager("me", TrustConfig(redundancy_quorum=1.0))
    assert trust.vote({"a": 5, "b": 5, "c": 5}) == 5
    assert trust.vote({"a": 5, "b": 5, "c": 6}) is None

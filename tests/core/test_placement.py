"""Tests for placement policies."""

import numpy as np
import pytest

from repro.core.candidate import CandidateScore
from repro.core.models import NeighborDescription, TaskDescription
from repro.core.placement import (
    BestScorePlacement,
    LoadAwarePlacement,
    RandomPlacement,
    RoundRobinPlacement,
)
from repro.geometry.vector import Vec2


def candidate(name, score, queue=0):
    neighbor = NeighborDescription(
        name=name,
        position=Vec2(0, 0),
        velocity=Vec2(0, 0),
        distance_m=10.0,
        link_rate_bps=1e7,
        link_snr_db=20.0,
        compute_headroom_ops=1e9,
        queue_length=queue,
        data_summary={},
        trust_score=1.0,
        beacon_age_s=0.1,
        predicted_contact_time_s=60.0,
    )
    return CandidateScore(neighbor, True, score, 0.1)


TASK = TaskDescription(function_name="f")
RANKED = [candidate("a", 0.9), candidate("b", 0.8), candidate("c", 0.5)]


def test_best_score_takes_top_of_list():
    policy = BestScorePlacement()
    assert [c.name for c in policy.choose(RANKED, TASK, count=2)] == ["a", "b"]
    assert policy.choose([], TASK) == []


def test_round_robin_rotates_across_calls():
    policy = RoundRobinPlacement()
    first = policy.choose(RANKED, TASK)[0].name
    second = policy.choose(RANKED, TASK)[0].name
    third = policy.choose(RANKED, TASK)[0].name
    fourth = policy.choose(RANKED, TASK)[0].name
    assert [first, second, third] == ["a", "b", "c"]
    assert fourth == "a"
    assert policy.choose([], TASK) == []


def test_random_placement_is_reproducible_and_valid():
    policy = RandomPlacement(rng=np.random.default_rng(0))
    chosen = policy.choose(RANKED, TASK, count=2)
    assert len(chosen) == 2
    assert len({c.name for c in chosen}) == 2
    again = RandomPlacement(rng=np.random.default_rng(0)).choose(RANKED, TASK, count=2)
    assert [c.name for c in chosen] == [c.name for c in again]


def test_load_aware_prefers_short_queue_among_near_best():
    candidates = [candidate("busy", 0.9, queue=5), candidate("idle", 0.85, queue=0),
                  candidate("weak", 0.3, queue=0)]
    policy = LoadAwarePlacement(score_tolerance=0.1)
    chosen = policy.choose(candidates, TASK, count=3)
    assert chosen[0].name == "idle"
    assert chosen[1].name == "busy"
    assert chosen[2].name == "weak"


def test_load_aware_ignores_far_worse_candidates():
    candidates = [candidate("best", 0.9, queue=3), candidate("far-worse", 0.2, queue=0)]
    policy = LoadAwarePlacement(score_tolerance=0.1)
    assert policy.choose(candidates, TASK)[0].name == "best"


def test_load_aware_validation():
    with pytest.raises(ValueError):
        LoadAwarePlacement(score_tolerance=-1)

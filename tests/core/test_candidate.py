"""Tests for RQ1 candidate filtering and scoring."""

import math

import pytest

from repro.core.candidate import CandidateScorer, ScoringWeights
from repro.core.models import (
    DataDescription,
    NeighborDescription,
    NetworkDescription,
    TaskDescription,
)
from repro.data.datatypes import DataType
from repro.data.quality import DataQuality
from repro.geometry.vector import Vec2


def make_neighbor(
    name="n",
    headroom=5e9,
    rate=20e6,
    contact=60.0,
    trust=0.9,
    beacon_age=0.2,
    queue=0,
    digest=None,
):
    if digest is None:
        digest = {"lidar_scan": (80.0, 0.2, 0.9)}
    return NeighborDescription(
        name=name,
        position=Vec2(20, 0),
        velocity=Vec2(0, 0),
        distance_m=20.0,
        link_rate_bps=rate,
        link_snr_db=20.0,
        compute_headroom_ops=headroom,
        queue_length=queue,
        data_summary=digest,
        trust_score=trust,
        beacon_age_s=beacon_age,
        predicted_contact_time_s=contact,
    )


def make_task(**kwargs):
    defaults = dict(function_name="perceive", operations=1e8, size_bytes=600)
    defaults.update(kwargs)
    return TaskDescription(**defaults)


def network_of(*neighbors):
    return NetworkDescription(owner="ego", time=1.0, position=Vec2(0, 0), neighbors=list(neighbors))


def test_good_candidate_is_eligible_with_subscores():
    scorer = CandidateScorer()
    score = scorer.score_neighbor(make_neighbor(), make_task())
    assert score.eligible
    assert 0.0 < score.score <= 1.0
    assert set(score.subscores) == {"compute", "link", "contact_time", "data", "trust"}
    assert score.estimated_completion_s < 1.0


@pytest.mark.parametrize(
    "kwargs,reason",
    [
        (dict(beacon_age=10.0), "stale"),
        (dict(headroom=0.0), "headroom"),
        (dict(rate=0.0), "link"),
        (dict(trust=0.1), "trust"),
        (dict(contact=0.01), "contact"),
    ],
)
def test_hard_filters(kwargs, reason):
    scorer = CandidateScorer()
    score = scorer.score_neighbor(make_neighbor(**kwargs), make_task())
    assert not score.eligible
    assert reason in score.rejection_reason.lower()


def test_data_filter_applies_only_when_task_needs_data():
    scorer = CandidateScorer()
    no_data_neighbor = make_neighbor(digest={})
    plain_task = make_task()
    data_task = make_task(
        data=DataDescription(
            data_type=DataType.LIDAR_SCAN,
            required_quality=DataQuality(freshness_s=1.0, coverage_radius_m=30.0, resolution=0.5, accuracy=0.5),
        )
    )
    assert scorer.score_neighbor(no_data_neighbor, plain_task).eligible
    rejected = scorer.score_neighbor(no_data_neighbor, data_task)
    assert not rejected.eligible
    assert "data" in rejected.rejection_reason


def test_deadline_filter():
    scorer = CandidateScorer()
    slow = make_neighbor(headroom=1e6, rate=1e5)
    task = make_task(deadline_s=0.5, operations=1e9)
    score = scorer.score_neighbor(slow, task)
    assert not score.eligible
    assert "deadline" in score.rejection_reason


def test_ranking_prefers_more_headroom_all_else_equal():
    scorer = CandidateScorer()
    weak = make_neighbor("weak", headroom=5e8)
    strong = make_neighbor("strong", headroom=5e9)
    ranked = scorer.rank(network_of(weak, strong), make_task())
    assert [c.name for c in ranked] == ["strong", "weak"]


def test_weights_change_ranking():
    # 'near' has a better link; 'fresh' has better data quality.
    near = make_neighbor("near", rate=25e6, digest={"lidar_scan": (80.0, 0.2, 0.4)})
    fresh = make_neighbor("fresh", rate=8e6, digest={"lidar_scan": (80.0, 0.1, 1.0)})
    task = make_task(
        data=DataDescription(
            data_type=DataType.LIDAR_SCAN,
            required_quality=DataQuality(freshness_s=1.0, coverage_radius_m=30.0, resolution=0.5, accuracy=0.3),
        )
    )
    link_heavy = CandidateScorer(weights=ScoringWeights(compute=0, link=1, contact_time=0, data=0, trust=0))
    data_heavy = CandidateScorer(weights=ScoringWeights(compute=0, link=0, contact_time=0, data=1, trust=0))
    assert scorer_top(link_heavy, near, fresh, task) == "near"
    assert scorer_top(data_heavy, near, fresh, task) == "fresh"


def scorer_top(scorer, a, b, task):
    ranked = scorer.rank(network_of(a, b), task)
    return ranked[0].name


def test_contact_margin_tightens_filter():
    lenient = CandidateScorer(contact_margin=1.0)
    strict = CandidateScorer(contact_margin=50.0)
    neighbor = make_neighbor(contact=2.0, headroom=1e9)
    task = make_task(operations=5e8)
    assert lenient.score_neighbor(neighbor, task).eligible
    assert not strict.score_neighbor(neighbor, task).eligible


def test_infinite_contact_time_scores_full_marks():
    scorer = CandidateScorer()
    neighbor = make_neighbor(contact=math.inf)
    score = scorer.score_neighbor(neighbor, make_task())
    assert score.eligible
    assert score.subscores["contact_time"] == 1.0


def test_all_scores_includes_ineligible():
    scorer = CandidateScorer()
    network = network_of(make_neighbor("good"), make_neighbor("bad", trust=0.0))
    assert len(scorer.all_scores(network, make_task())) == 2
    assert len(scorer.rank(network, make_task())) == 1


def test_negative_weight_rejected():
    with pytest.raises(ValueError):
        ScoringWeights(compute=-0.1)


# ------------------------------------------------------------- memoisation


def network_with_freshness(freshness, *neighbors):
    return NetworkDescription(
        owner="ego",
        time=1.0,
        position=Vec2(0, 0),
        neighbors=list(neighbors),
        freshness=freshness,
    )


def test_repeated_rank_hits_cache_for_same_epoch_and_beacons():
    scorer = CandidateScorer()
    # Freshness token as stamped by NetworkDescriptionBuilder:
    # (owner, now, position_epoch, membership_epoch, beacons_heard).
    network = network_with_freshness(
        ("ego", 1.0, 5, 2, 7), make_neighbor("a"), make_neighbor("b")
    )
    task = make_task()
    first = scorer.rank(network, task)
    assert (scorer.cache_hits, scorer.cache_misses) == (0, 1)
    assert scorer.rank(network, task) == first
    assert scorer.all_scores(network, task)  # same cache entry serves all_scores
    assert (scorer.cache_hits, scorer.cache_misses) == (2, 1)
    assert scorer.cache_hit_rate == pytest.approx(2 / 3)


def test_epoch_bump_invalidates_scorer_cache():
    scorer = CandidateScorer()
    task = make_task()
    neighbor = make_neighbor("a")
    scorer.rank(network_with_freshness(("ego", 1.0, 5, 2, 7), neighbor), task)
    # Position epoch bumped (mobility tick): same neighbours, new token.
    scorer.rank(network_with_freshness(("ego", 1.0, 6, 2, 7), neighbor), task)
    assert (scorer.cache_hits, scorer.cache_misses) == (0, 2)
    # Another beacon heard: bumps the token as well.
    scorer.rank(network_with_freshness(("ego", 1.0, 6, 2, 8), neighbor), task)
    assert (scorer.cache_hits, scorer.cache_misses) == (0, 3)
    # Stale views stay cached (bounded LRU) so other owners sharing this
    # scorer are not flushed — but a stale token is still a miss, never a
    # wrong answer.
    assert len(scorer._score_cache) == 3


def test_shared_scorer_keeps_every_owners_view_cached():
    """Interleaved owners (one shared scorer) all keep hitting the cache."""
    scorer = CandidateScorer()
    task = make_task()
    views = [
        network_with_freshness((f"owner-{i}", 1.0, 5, 2, 7), make_neighbor("a"))
        for i in range(8)
    ]
    for view in views:
        scorer.rank(view, task)
    assert (scorer.cache_hits, scorer.cache_misses) == (0, 8)
    # A second interleaved round is served entirely from cache.
    for view in views:
        scorer.rank(view, task)
    assert (scorer.cache_hits, scorer.cache_misses) == (8, 8)


def test_scorer_cache_capacity_is_enforced_lru():
    scorer = CandidateScorer(cache_capacity=2)
    task = make_task()
    neighbor = make_neighbor("a")
    tokens = [("ego", 1.0, epoch, 2, 7) for epoch in (1, 2, 3)]
    for token in tokens:
        scorer.rank(network_with_freshness(token, neighbor), task)
    assert len(scorer._score_cache) == 2
    # Oldest token was evicted: ranking it again is a miss, the newest hits.
    scorer.rank(network_with_freshness(tokens[0], neighbor), task)
    assert scorer.cache_misses == 4
    scorer.rank(network_with_freshness(tokens[2], neighbor), task)
    assert scorer.cache_hits == 1


def test_distinct_task_shapes_get_distinct_cache_entries():
    scorer = CandidateScorer()
    network = network_with_freshness(("ego", 1.0, 5, 2, 7), make_neighbor("a"))
    scorer.rank(network, make_task(operations=1e8))
    scorer.rank(network, make_task(operations=2e8))
    assert (scorer.cache_hits, scorer.cache_misses) == (0, 2)
    # Same shape again (even a different TaskDescription object) hits.
    scorer.rank(network, make_task(operations=2e8))
    assert scorer.cache_hits == 1


def test_memoised_scores_byte_identical_to_unmemoised_path():
    import random

    rng = random.Random(42)
    neighbors = [
        make_neighbor(
            name=f"n{i}",
            headroom=rng.uniform(0, 8e9),
            rate=rng.uniform(0, 30e6),
            contact=rng.uniform(0.0, 80.0),
            trust=rng.uniform(0, 1),
            beacon_age=rng.uniform(0, 3.0),
            queue=rng.randrange(5),
        )
        for i in range(40)
    ]
    task = make_task(operations=3e8, deadline_s=5.0)
    memoised = CandidateScorer()
    reference = CandidateScorer(memoise=False)
    network = network_with_freshness(("ego", 1.0, 5, 2, 7), *neighbors)

    def flatten(scores):
        return [
            (s.name, s.eligible, s.score, s.estimated_completion_s,
             s.rejection_reason, s.subscores)
            for s in scores
        ]

    for _ in range(3):  # repeated calls stay identical, not just the first
        assert flatten(memoised.rank(network, task)) == flatten(reference.rank(network, task))
        assert flatten(memoised.all_scores(network, task)) == flatten(
            reference.all_scores(network, task)
        )
    assert memoised.cache_hits > 0
    assert (reference.cache_hits, reference.cache_misses) == (0, 0)


def test_descriptions_without_freshness_are_never_cached():
    scorer = CandidateScorer()
    network = network_of(make_neighbor("a"))
    assert network.freshness is None
    scorer.rank(network, make_task())
    scorer.rank(network, make_task())
    assert (scorer.cache_hits, scorer.cache_misses) == (0, 0)

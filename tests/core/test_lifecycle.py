"""Tests for the task lifecycle state machine."""

import pytest

from repro.core.lifecycle import IllegalTransition, TaskLifecycle, TaskState
from repro.core.models import TaskDescription, TaskResult


def make_lifecycle(deadline=0.0):
    task = TaskDescription(function_name="f", deadline_s=deadline)
    return TaskLifecycle(task=task, created_at=10.0)


def test_initial_state_and_history():
    lifecycle = make_lifecycle()
    assert lifecycle.state == TaskState.CREATED
    assert lifecycle.history[0] == (10.0, TaskState.CREATED)
    assert not lifecycle.is_terminal
    assert lifecycle.total_latency() is None


def test_happy_path_offload():
    lifecycle = make_lifecycle()
    lifecycle.transition(TaskState.SELECTING, 10.1)
    lifecycle.record_attempt("peer")
    lifecycle.transition(TaskState.OFFLOADED, 10.2)
    lifecycle.result = TaskResult(task_id=lifecycle.task.task_id, executor="peer", success=True)
    lifecycle.transition(TaskState.COMPLETED, 10.7)
    assert lifecycle.is_terminal
    assert lifecycle.succeeded
    assert lifecycle.total_latency() == pytest.approx(0.7)
    assert lifecycle.executors_tried == ["peer"]
    assert lifecycle.attempts == 1


def test_retry_path_offloaded_back_to_selecting():
    lifecycle = make_lifecycle()
    lifecycle.transition(TaskState.SELECTING, 10.1)
    lifecycle.transition(TaskState.OFFLOADED, 10.2)
    lifecycle.transition(TaskState.SELECTING, 11.0)
    lifecycle.transition(TaskState.EXECUTING_LOCALLY, 11.1)
    lifecycle.transition(TaskState.COMPLETED, 12.0)
    assert lifecycle.state == TaskState.COMPLETED


def test_illegal_transitions_rejected():
    lifecycle = make_lifecycle()
    with pytest.raises(IllegalTransition):
        lifecycle.transition(TaskState.COMPLETED, 10.1)
    lifecycle.transition(TaskState.SELECTING, 10.1)
    lifecycle.transition(TaskState.FAILED, 10.2)
    with pytest.raises(IllegalTransition):
        lifecycle.transition(TaskState.SELECTING, 10.3)


def test_failed_without_result_is_not_succeeded():
    lifecycle = make_lifecycle()
    lifecycle.transition(TaskState.SELECTING, 10.1)
    lifecycle.transition(TaskState.FAILED, 10.5)
    assert lifecycle.is_terminal
    assert not lifecycle.succeeded
    assert lifecycle.total_latency() == pytest.approx(0.5)


def test_time_in_state_accumulates():
    lifecycle = make_lifecycle()
    lifecycle.transition(TaskState.SELECTING, 11.0)
    lifecycle.transition(TaskState.OFFLOADED, 12.0)
    lifecycle.transition(TaskState.SELECTING, 14.0)
    lifecycle.transition(TaskState.OFFLOADED, 15.0)
    lifecycle.transition(TaskState.COMPLETED, 18.0)
    assert lifecycle.time_in_state(TaskState.OFFLOADED) == pytest.approx(2.0 + 3.0)
    assert lifecycle.time_in_state(TaskState.SELECTING) == pytest.approx(1.0 + 1.0)


def test_met_deadline():
    on_time = make_lifecycle(deadline=1.0)
    on_time.transition(TaskState.SELECTING, 10.1)
    on_time.transition(TaskState.EXECUTING_LOCALLY, 10.2)
    on_time.transition(TaskState.COMPLETED, 10.8)
    assert on_time.met_deadline()

    late = make_lifecycle(deadline=1.0)
    late.transition(TaskState.SELECTING, 10.1)
    late.transition(TaskState.EXECUTING_LOCALLY, 10.2)
    late.transition(TaskState.COMPLETED, 12.0)
    assert not late.met_deadline()

    no_deadline = make_lifecycle(deadline=0.0)
    assert no_deadline.met_deadline()

"""Tests for result aggregation."""

import pytest

from repro.core.models import TaskResult
from repro.core.results import ResultAggregator


def result(value, success=True):
    return TaskResult(task_id=0, executor="x", success=success, value=value)


def test_round_closes_when_expected_results_arrive():
    fused_values = []
    aggregator = ResultAggregator(
        fuse=sum, on_round_complete=lambda rnd, fused: fused_values.append(fused)
    )
    round_ = aggregator.open_round(expected=2)
    assert aggregator.add_result(round_.round_id, result(1)) is None
    assert aggregator.add_result(round_.round_id, result(2)) == 3
    assert fused_values == [3]
    assert aggregator.rounds_completed == 1
    assert aggregator.rounds_with_results == 1


def test_failed_results_excluded_from_fusion():
    aggregator = ResultAggregator(fuse=sum)
    round_ = aggregator.open_round(expected=2)
    aggregator.add_result(round_.round_id, result(5))
    fused = aggregator.add_result(round_.round_id, result(99, success=False))
    assert fused == 5


def test_force_close_with_partial_results():
    aggregator = ResultAggregator(fuse=sum)
    round_ = aggregator.open_round(expected=3)
    aggregator.add_result(round_.round_id, result(7))
    assert aggregator.force_close(round_.round_id) == 7
    # Late results after close are ignored.
    assert aggregator.add_result(round_.round_id, result(100)) is None


def test_force_close_with_no_successes_returns_none():
    aggregator = ResultAggregator(fuse=sum)
    round_ = aggregator.open_round(expected=2)
    aggregator.add_result(round_.round_id, result(None, success=False))
    assert aggregator.force_close(round_.round_id) is None
    assert aggregator.rounds_with_results == 0


def test_invalid_round_parameters():
    aggregator = ResultAggregator(fuse=sum)
    with pytest.raises(ValueError):
        aggregator.open_round(expected=0)
    assert aggregator.add_result(999, result(1)) is None
    assert aggregator.force_close(999) is None

"""Deadline- and load-related orchestrator behaviour."""

from repro.core.api import AirDnDConfig
from repro.core.lifecycle import TaskState
from repro.core.models import TaskDescription
from repro.core.task_model import build_task
from tests.conftest import make_static_airdnd_nodes


def test_deadline_met_flag_after_completion(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester = nodes[0]
    sim.run(until=2.0)
    lifecycle = requester.submit_function("noop", deadline_s=5.0)
    sim.run(until=10.0)
    assert lifecycle.succeeded
    assert lifecycle.met_deadline()


def test_impossible_deadline_filters_remote_candidates(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester = nodes[0]
    sim.run(until=2.0)
    # A deadline far below even the transfer time: no remote candidate passes
    # the scorer, so the task runs locally (local fallback ignores transfer).
    task = build_task(registry, "noop", deadline_s=1e-5)
    lifecycle = requester.submit_task(task)
    sim.run(until=10.0)
    assert lifecycle.is_terminal
    if lifecycle.succeeded:
        assert lifecycle.result.executor == requester.name


def test_many_concurrent_tasks_all_complete_remotely(sim, environment, registry):
    config = AirDnDConfig()
    nodes = make_static_airdnd_nodes(
        sim, environment, registry, [(0, 0), (40, 0), (0, 40), (40, 40)], config=config
    )
    requester = nodes[0]
    sim.run(until=2.0)
    lifecycles = [requester.submit_function("noop") for _ in range(12)]
    sim.run(until=30.0)
    assert all(l.is_terminal for l in lifecycles)
    assert sum(1 for l in lifecycles if l.succeeded) >= 11
    executors = {l.result.executor for l in lifecycles if l.succeeded}
    # With neighbours available and spare headroom advertised, the work is
    # offloaded rather than run on the requester itself.
    assert executors and requester.name not in executors


def test_lifecycles_listing_matches_submissions(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester = nodes[0]
    sim.run(until=2.0)
    for _ in range(3):
        requester.submit_function("noop")
    sim.run(until=15.0)
    assert len(requester.orchestrator.lifecycles) == 3
    assert len(requester.orchestrator.completed_lifecycles()) == 3
    assert requester.orchestrator.success_rate() == 1.0


def test_task_redundancy_larger_than_fleet_still_completes(sim, environment, registry):
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    requester = nodes[0]
    sim.run(until=2.0)
    lifecycle = requester.submit_function("noop", redundancy=5)
    sim.run(until=20.0)
    assert lifecycle.is_terminal
    assert lifecycle.succeeded

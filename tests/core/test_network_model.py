"""Tests for Model 1 construction and contact-time prediction."""

import math

import pytest

from repro.core.network_model import NetworkDescriptionBuilder, predict_contact_time
from repro.geometry.vector import Vec2
from repro.mesh.node import MeshNode
from repro.mobility.manager import MobilityManager
from repro.mobility.vehicle import Vehicle
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


class TestPredictContactTime:
    def test_already_out_of_range(self):
        assert predict_contact_time(Vec2(0, 0), Vec2(0, 0), Vec2(500, 0), Vec2(0, 0), 100.0) == 0.0

    def test_static_nodes_in_range_never_separate(self):
        assert math.isinf(
            predict_contact_time(Vec2(0, 0), Vec2(0, 0), Vec2(50, 0), Vec2(0, 0), 100.0)
        )

    def test_departing_node_leaves_at_expected_time(self):
        # b starts at x=50 moving away at 10 m/s; leaves 100 m range after 5 s.
        time = predict_contact_time(Vec2(0, 0), Vec2(0, 0), Vec2(50, 0), Vec2(10, 0), 100.0)
        assert time == pytest.approx(5.0)

    def test_approaching_node_has_longer_contact_than_departing(self):
        approaching = predict_contact_time(Vec2(0, 0), Vec2(0, 0), Vec2(50, 0), Vec2(-10, 0), 100.0)
        departing = predict_contact_time(Vec2(0, 0), Vec2(0, 0), Vec2(50, 0), Vec2(10, 0), 100.0)
        assert approaching > departing

    def test_same_velocity_never_separates(self):
        assert math.isinf(
            predict_contact_time(Vec2(0, 0), Vec2(7, 0), Vec2(30, 0), Vec2(7, 0), 100.0)
        )

    def test_already_out_of_range_while_approaching_is_zero(self):
        # Contact prediction is conservative: a node outside range counts as
        # no contact even if it is heading straight back in.
        assert predict_contact_time(
            Vec2(0, 0), Vec2(0, 0), Vec2(500, 0), Vec2(-50, 0), 100.0
        ) == 0.0

    def test_exactly_on_boundary_moving_tangentially(self):
        # |p| == R with purely tangential motion: b = 2 p·v = 0 and c = 0, so
        # the discriminant collapses to 0 and the root is t = 0 — the node is
        # already leaving.
        assert predict_contact_time(
            Vec2(0, 0), Vec2(0, 0), Vec2(100, 0), Vec2(0, 10), 100.0
        ) == 0.0

    def test_tangential_pass_inside_range_exits_via_chord(self):
        # Node crosses the range disc on a chord: starting at (-60, 80) with
        # |p| = 100 = R... use a point strictly inside: (0, 80), moving along
        # +x at 10 m/s inside R=100 exits at x = 60 -> t = 6 s.
        time = predict_contact_time(
            Vec2(0, 0), Vec2(0, 0), Vec2(0, 80), Vec2(10, 0), 100.0
        )
        assert time == pytest.approx(6.0)

    def test_approaching_then_receding_takes_the_later_root(self):
        # Node at (90, 0) moving at -10 m/s crosses the disc and leaves on
        # the far side at x = -100: |90 - 10 t| = 100 -> t = 19 s (the
        # positive root), not the negative entry root t = -1 s.
        time = predict_contact_time(
            Vec2(0, 0), Vec2(0, 0), Vec2(90, 0), Vec2(-10, 0), 100.0
        )
        assert time == pytest.approx(19.0)

    def test_zero_relative_velocity_on_boundary_is_inf(self):
        # Degenerate: parked exactly on the range circle -> never separates
        # under the constant-velocity model.
        assert math.isinf(
            predict_contact_time(Vec2(0, 0), Vec2(3, 1), Vec2(100, 0), Vec2(3, 1), 100.0)
        )


def test_builder_produces_neighbor_descriptions():
    sim = Simulator(seed=9)
    env = RadioEnvironment(sim, LinkBudget())
    manager = MobilityManager(sim, tick=0.1)
    ego_vehicle = Vehicle(sim, [Vec2(0, 0), Vec2(300, 0)], name="ego", initial_speed=10.0)
    manager.add_node(ego_vehicle)
    other = StaticNode(sim, Vec2(60, 0), name="other")
    manager.add_node(other)
    ego = MeshNode(sim, env, ego_vehicle)
    peer = MeshNode(sim, env, other)
    builder = NetworkDescriptionBuilder(ego, env)
    sim.run(until=2.0)
    description = builder.build(sim.now)
    assert description.owner == "ego"
    assert description.names() == ["other"]
    neighbor = description.neighbors[0]
    assert neighbor.link_rate_bps > 0
    assert neighbor.beacon_age_s < 1.0
    assert neighbor.predicted_contact_time_s > 0
    assert builder.reachable_headroom(sim.now) == neighbor.compute_headroom_ops


def test_builder_caches_until_view_changes():
    sim = Simulator(seed=9)
    env = RadioEnvironment(sim, LinkBudget())
    ego = MeshNode(sim, env, StaticNode(sim, Vec2(0, 0), name="ego"))
    MeshNode(sim, env, StaticNode(sim, Vec2(60, 0), name="other"))
    builder = NetworkDescriptionBuilder(ego, env)
    sim.run(until=2.0)
    first = builder.build(sim.now)
    # Same instant, unchanged view: the memoised description is reused.
    assert builder.build(sim.now) is first
    assert builder.reachable_headroom(sim.now) == first.total_headroom_ops()
    # Once more beacons arrive, a fresh description is materialised.
    sim.run(until=4.0)
    second = builder.build(sim.now)
    assert second is not first
    assert second.time == sim.now


def test_builder_empty_when_isolated():
    sim = Simulator(seed=9)
    env = RadioEnvironment(sim, LinkBudget())
    lonely = MeshNode(sim, env, StaticNode(sim, Vec2(0, 0), name="lonely"))
    builder = NetworkDescriptionBuilder(lonely, env)
    sim.run(until=2.0)
    assert len(builder.build(sim.now)) == 0

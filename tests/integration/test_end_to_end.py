"""End-to-end integration tests across the whole stack."""

from repro.data.datatypes import DataType
from repro.perception.objects import ObjectList
from repro.scenarios.intersection import build_intersection_scenario
from repro.scenarios.urban_grid import build_urban_grid_scenario


def test_look_around_corner_detects_hidden_pedestrian_via_offloading():
    scenario = build_intersection_scenario(num_vehicles=6, seed=7)
    report = scenario.run(duration=25.0)
    # AirDnD must have detected the occluded pedestrian at least once via a
    # borrowed viewpoint.
    assert report.extra["occluded_detection_rate"] > 0.3
    assert report.extra["occluded_agents_detected"] >= 1
    # Remote perception results actually flowed back as object lists.
    assert any(isinstance(r, ObjectList) for r in scenario.perception_results)
    assert report.tasks_completed > 5


def test_no_raw_sensor_frames_cross_the_mesh():
    scenario = build_intersection_scenario(num_vehicles=6, seed=7)
    scenario.run(duration=15.0)
    monitor = scenario.sim.monitor
    # Bytes on the mesh are beacons + AirDnD protocol messages; the raw lidar
    # frames (1.5 MB each, dozens captured) never travel.
    raw_bytes_captured = sum(node.pond.total_bytes_stored for node in scenario.nodes)
    mesh_bytes = monitor.counter_value("radio.bytes_delivered")
    assert raw_bytes_captured > 10 * mesh_bytes
    # And nothing used the cellular path at all.
    assert monitor.counter_value("cellular.bytes_uplinked") == 0


def test_results_are_much_smaller_than_the_data_they_summarise():
    scenario = build_intersection_scenario(num_vehicles=6, seed=3)
    scenario.run(duration=20.0)
    completed = [l for l in scenario.ego.completed_tasks() if l.succeeded]
    assert completed
    for lifecycle in completed:
        assert lifecycle.result.result_size_bytes < 100_000


def test_urban_grid_offloads_toward_compute_rich_nodes():
    scenario = build_urban_grid_scenario(num_vehicles=12, seed=5)
    report = scenario.run(duration=30.0)
    assert report.tasks_completed > 10
    # Executors chosen should more often be the compute-rich tier (index % 3 == 0).
    executors = [
        l.result.executor
        for node in scenario.nodes
        for l in node.orchestrator.lifecycles
        if l.succeeded and l.result.executor != l.task.requester
    ]
    if executors:   # offloading happened at all
        rich = [e for e in executors if int(e.split("-")[1]) % 3 == 0]
        assert len(rich) >= len(executors) * 0.4


def test_mesh_tasks_survive_churn_in_urban_grid():
    scenario = build_urban_grid_scenario(num_vehicles=14, seed=9)
    # Remove a third of the fleet mid-run to model vehicles leaving.
    def drop_some():
        for node in scenario.nodes[10:]:
            node.shutdown()

    scenario.sim.schedule(10.0, drop_some)
    report = scenario.run(duration=30.0)
    assert report.success_rate > 0.6

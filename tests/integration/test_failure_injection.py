"""Failure-injection integration tests."""

from repro.core.api import AirDnDConfig, AirDnDNode
from repro.core.lifecycle import TaskState
from repro.core.trust import TrustConfig
from repro.geometry.vector import Vec2
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator
from tests.conftest import make_static_airdnd_nodes


def test_reluctant_executors_force_retries_but_tasks_still_finish(registry):
    sim = Simulator(seed=33)
    environment = RadioEnvironment(sim, LinkBudget())
    config = AirDnDConfig(executor_accept_probability=0.3, offer_timeout=1.5)
    nodes = make_static_airdnd_nodes(
        sim, environment, registry, [(0, 0), (40, 0), (0, 40), (40, 40)], config=config
    )
    requester = nodes[0]
    sim.run(until=2.0)
    lifecycles = [requester.submit_function("noop") for _ in range(5)]
    sim.run(until=40.0)
    assert all(l.is_terminal for l in lifecycles)
    assert all(l.succeeded for l in lifecycles)
    # Rejections happened and were survived.
    assert sim.monitor.counter_value("airdnd.offers_rejected") > 0


def test_malicious_majority_is_detected_as_disagreement(registry):
    sim = Simulator(seed=34)
    environment = RadioEnvironment(sim, LinkBudget())
    trust_config = TrustConfig(redundancy_quorum=0.6)
    requester = AirDnDNode(
        sim, environment, StaticNode(sim, Vec2(0, 0), name="req"), registry,
        config=AirDnDConfig(trust=trust_config),
    )
    AirDnDNode(sim, environment, StaticNode(sim, Vec2(40, 0), name="honest"), registry)
    AirDnDNode(
        sim, environment, StaticNode(sim, Vec2(0, 40), name="evil-1"), registry,
        result_corruptor=lambda v: "lie-A",
    )
    sim.run(until=2.0)
    lifecycle = requester.submit_function("noop", redundancy=2)
    sim.run(until=15.0)
    assert lifecycle.is_terminal
    if lifecycle.state == TaskState.FAILED:
        assert "disagree" in lifecycle.result.failure_reason
    else:
        # If the vote still cleared, the honest answer must have won.
        assert lifecycle.result.value == 42


def test_node_without_radio_contact_still_serves_itself(registry):
    sim = Simulator(seed=35)
    environment = RadioEnvironment(sim, LinkBudget())
    lonely = make_static_airdnd_nodes(sim, environment, registry, [(0, 0)])[0]
    sim.run(until=1.0)
    lifecycles = [lonely.submit_function("noop") for _ in range(3)]
    sim.run(until=10.0)
    assert all(l.succeeded for l in lifecycles)
    assert all(l.result.executor == lonely.name for l in lifecycles)

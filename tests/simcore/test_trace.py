"""Tests for the trace log."""

from repro.simcore.trace import TraceLog


def test_disabled_log_records_nothing():
    log = TraceLog(enabled=False)
    log.record(1.0, "event", "x")
    assert len(log) == 0


def test_enabled_log_records_and_filters():
    log = TraceLog(enabled=True)
    log.record(1.0, "send", "a")
    log.record(2.0, "recv", "b")
    log.record(3.0, "send", "c")
    assert len(log) == 3
    sends = log.filter(kind="send")
    assert [r.detail for r in sends] == ["a", "c"]
    late = log.filter(predicate=lambda r: r.time > 1.5)
    assert [r.detail for r in late] == ["b", "c"]


def test_capacity_caps_records():
    log = TraceLog(enabled=True, capacity=2)
    for i in range(5):
        log.record(float(i), "event", str(i))
    assert len(log) == 2


def test_clear_empties_log():
    log = TraceLog(enabled=True)
    log.record(0.0, "e", "x")
    log.clear()
    assert len(log) == 0
    assert list(log) == []

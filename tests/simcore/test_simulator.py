"""Tests for the discrete-event simulator."""

import pytest

from repro.simcore.simulator import Simulator, StopSimulation


def test_schedule_and_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(sim.now))
    sim.schedule(7.0, lambda: fired.append(sim.now))
    sim.run(until=5.0)
    assert fired == [2.0]
    assert sim.now == 5.0


def test_run_continues_from_previous_time():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("a"))
    sim.schedule(8.0, lambda: fired.append("b"))
    sim.run(until=5.0)
    sim.run(until=10.0)
    assert fired == ["a", "b"]
    assert sim.now == 10.0


def test_schedule_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.schedule_at(2.0, lambda: None)


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run(until=10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_stop_simulation_exception_halts_loop():
    sim = Simulator()
    fired = []

    def stopper():
        fired.append("stop")
        raise StopSimulation()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, lambda: fired.append("after"))
    sim.run(until=10.0)
    assert fired == ["stop"]


def test_max_events_limit():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    fired = sim.run(until=100.0, max_events=4)
    assert fired == 4


def test_periodic_task_fires_and_cancels():
    sim = Simulator()
    count = []
    task = sim.schedule_periodic(1.0, lambda: count.append(sim.now))
    sim.run(until=3.5)
    assert count == [1.0, 2.0, 3.0]
    task.cancel()
    sim.run(until=10.0)
    assert len(count) == 3
    assert task.cancelled


def test_periodic_task_with_start_delay():
    sim = Simulator()
    count = []
    sim.schedule_periodic(2.0, lambda: count.append(sim.now), start_delay=0.5)
    sim.run(until=5.0)
    assert count == [0.5, 2.5, 4.5]


def test_periodic_jitter_changes_spacing_but_keeps_order():
    sim = Simulator(seed=7)
    times = []
    sim.schedule_periodic(1.0, lambda: times.append(sim.now), jitter=0.5)
    sim.run(until=10.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(1.0 <= gap <= 1.5 + 1e-9 for gap in gaps)
    assert len(times) >= 6


def test_register_entity_enumerates():
    sim = Simulator()

    class Dummy:
        pass

    entity = Dummy()
    sim.register_entity(entity)
    assert entity in sim.entities


def test_determinism_same_seed_same_trace():
    def run(seed):
        sim = Simulator(seed=seed)
        values = []
        rng = sim.streams.get("test")
        sim.schedule_periodic(0.5, lambda: values.append(float(rng.random())))
        sim.run(until=5.0)
        return values

    assert run(3) == run(3)
    assert run(3) != run(4)


def test_schedule_batch_fires_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_batch(
        [
            (0.3, (lambda: fired.append("c")), 0, "c"),
            (0.1, (lambda: fired.append("a")), 0, "a"),
            (0.2, (lambda: fired.append("b")), 0, "b"),
        ]
    )
    sim.run(until=1.0)
    assert fired == ["a", "b", "c"]
    assert sim.now == 1.0


def test_schedule_batch_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_batch([(0.1, (lambda: None), 0, "ok"), (-0.5, (lambda: None), 0, "bad")])


def test_schedule_batch_is_relative_to_current_time():
    sim = Simulator()
    fired = []
    sim.schedule(
        1.0,
        lambda: sim.schedule_batch([(0.5, (lambda: fired.append(sim.now)), 0, "late")]),
    )
    sim.run(until=2.0)
    assert fired == [1.5]


def test_schedule_batch_events_are_cancellable():
    sim = Simulator()
    fired = []
    events = sim.schedule_batch(
        [
            (0.1, (lambda: fired.append("keep")), 0, "keep"),
            (0.2, (lambda: fired.append("drop")), 0, "drop"),
        ]
    )
    events[1].cancel()
    sim.run(until=1.0)
    assert fired == ["keep"]

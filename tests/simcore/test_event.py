"""Tests for the event queue."""

import pytest

from repro.simcore.event import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    queue.push(3.0, lambda: None, name="late")
    queue.push(1.0, lambda: None, name="early")
    queue.push(2.0, lambda: None, name="middle")
    assert [queue.pop().name for _ in range(3)] == ["early", "middle", "late"]


def test_same_time_orders_by_priority_then_insertion():
    queue = EventQueue()
    queue.push(1.0, lambda: None, priority=1, name="low-priority")
    queue.push(1.0, lambda: None, priority=0, name="high-priority")
    queue.push(1.0, lambda: None, priority=0, name="high-priority-2")
    names = [queue.pop().name for _ in range(3)]
    assert names == ["high-priority", "high-priority-2", "low-priority"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None, name="cancelled")
    queue.push(2.0, lambda: None, name="kept")
    event.cancel()
    assert queue.pop().name == "kept"


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(IndexError):
        queue.pop()


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 5.0


def test_active_count_excludes_cancelled():
    queue = EventQueue()
    kept = queue.push(1.0, lambda: None)
    dropped = queue.push(2.0, lambda: None)
    dropped.cancel()
    assert queue.active_count() == 1
    assert kept.active and not dropped.active


def test_len_and_clear():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.clear()
    assert len(queue) == 0
    assert queue.peek_time() is None


def test_active_count_is_tracked_incrementally():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    assert queue.active_count() == 5
    events[1].cancel()
    events[1].cancel()  # double cancel must not double-decrement
    assert queue.active_count() == 4
    queue.pop()  # pops event 0
    assert queue.active_count() == 3
    queue.clear()
    assert queue.active_count() == 0


def test_cancel_after_pop_does_not_skew_active_count():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    popped = queue.pop()
    assert popped is first
    popped.cancel()  # already fired; only marks the flag
    assert queue.active_count() == 1


def test_cancel_after_clear_does_not_underflow():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.clear()
    event.cancel()
    assert queue.active_count() == 0


# ------------------------------------------------------ batch insertion


def test_push_batch_pops_like_sequential_pushes():
    sequential = EventQueue()
    batched = EventQueue()
    entries = [
        (2.0, (lambda: None), 0, "a"),
        (1.0, (lambda: None), 1, "b"),
        (1.0, (lambda: None), 0, "c"),
        (1.0, (lambda: None), 0, "d"),
        (3.0, (lambda: None), -1, "e"),
    ]
    for time, callback, priority, name in entries:
        sequential.push(time, callback, priority=priority, name=name)
    batched.push_batch(entries)
    expected = [sequential.pop().name for _ in range(len(entries))]
    got = [batched.pop().name for _ in range(len(entries))]
    assert got == expected == ["c", "d", "b", "a", "e"]


def test_push_batch_interleaves_with_single_pushes():
    queue = EventQueue()
    queue.push(1.0, lambda: None, name="single")
    events = queue.push_batch([(1.0, (lambda: None), 0, "batched")])
    assert len(events) == 1
    # Same (time, priority): the earlier-pushed single event pops first.
    assert [queue.pop().name, queue.pop().name] == ["single", "batched"]


def test_push_batch_empty_is_noop():
    queue = EventQueue()
    assert queue.push_batch([]) == []
    assert len(queue) == 0
    assert queue.active_count() == 0


def test_push_batch_heapify_path_matches_sift_path():
    """Both insertion strategies (bulk heapify vs per-event sift) must yield
    the same pop order; a large batch into a small heap takes the heapify
    branch, a small batch into a large heap takes the sift branch."""
    large_batch = EventQueue()
    large_batch.push(5.0, lambda: None, name="existing")
    large_batch.push_batch([(float(i % 7), (lambda: None), 0, f"b{i}") for i in range(40)])

    small_batch = EventQueue()
    for i in range(40):
        small_batch.push(float(i % 7), lambda: None, name=f"b{i}")
    small_batch.push(5.0, lambda: None, name="existing")
    small_batch.push_batch([(2.5, (lambda: None), 0, "tiny")])
    large_batch.push(2.5, lambda: None, name="tiny")

    order_a = [large_batch.pop().time for _ in range(42)]
    order_b = [small_batch.pop().time for _ in range(42)]
    assert order_a == sorted(order_a)
    assert order_b == sorted(order_b)


# ---------------------------------------------------------- compaction


def test_compaction_sheds_cancelled_events():
    from repro.simcore.event import COMPACT_MIN_HEAP

    queue = EventQueue()
    keep = [queue.push(float(i), lambda: None, name=f"k{i}") for i in range(8)]
    doomed = [
        queue.push(1000.0 + i, lambda: None, name=f"d{i}")
        for i in range(2 * COMPACT_MIN_HEAP)
    ]
    assert queue.compactions == 0
    for event in doomed:
        event.cancel()
    # Once cancelled events dominate, the heap is rebuilt without them.
    # (Below COMPACT_MIN_HEAP entries the queue stops compacting, so a few
    # cancelled stragglers may remain — the bound is the threshold, not 0.)
    assert queue.compactions >= 1
    assert len(queue) < len(keep) + len(doomed)
    assert len(queue) <= COMPACT_MIN_HEAP
    assert queue.active_count() == len(keep)
    # Observable order is untouched.
    assert [queue.pop().name for _ in range(len(keep))] == [
        f"k{i}" for i in range(len(keep))
    ]


def test_small_heaps_are_never_compacted():
    from repro.simcore.event import COMPACT_MIN_HEAP

    queue = EventQueue()
    events = [
        queue.push(float(i), lambda: None)
        for i in range(COMPACT_MIN_HEAP // 2)
    ]
    for event in events:
        event.cancel()
    assert queue.compactions == 0


def test_compacted_queue_keeps_sequence_stability():
    from repro.simcore.event import COMPACT_MIN_HEAP

    queue = EventQueue()
    first = queue.push(1.0, lambda: None, name="first")
    doomed = [
        queue.push(0.5, lambda: None) for _ in range(3 * COMPACT_MIN_HEAP)
    ]
    second = queue.push(1.0, lambda: None, name="second")
    for event in doomed:
        event.cancel()
    assert queue.compactions >= 1
    # Ties at (time, priority) still pop in original insertion order.
    assert [queue.pop().name, queue.pop().name] == ["first", "second"]

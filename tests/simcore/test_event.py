"""Tests for the event queue."""

import pytest

from repro.simcore.event import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    queue.push(3.0, lambda: None, name="late")
    queue.push(1.0, lambda: None, name="early")
    queue.push(2.0, lambda: None, name="middle")
    assert [queue.pop().name for _ in range(3)] == ["early", "middle", "late"]


def test_same_time_orders_by_priority_then_insertion():
    queue = EventQueue()
    queue.push(1.0, lambda: None, priority=1, name="low-priority")
    queue.push(1.0, lambda: None, priority=0, name="high-priority")
    queue.push(1.0, lambda: None, priority=0, name="high-priority-2")
    names = [queue.pop().name for _ in range(3)]
    assert names == ["high-priority", "high-priority-2", "low-priority"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None, name="cancelled")
    queue.push(2.0, lambda: None, name="kept")
    event.cancel()
    assert queue.pop().name == "kept"


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(IndexError):
        queue.pop()


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 5.0


def test_active_count_excludes_cancelled():
    queue = EventQueue()
    kept = queue.push(1.0, lambda: None)
    dropped = queue.push(2.0, lambda: None)
    dropped.cancel()
    assert queue.active_count() == 1
    assert kept.active and not dropped.active


def test_len_and_clear():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.clear()
    assert len(queue) == 0
    assert queue.peek_time() is None


def test_active_count_is_tracked_incrementally():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    assert queue.active_count() == 5
    events[1].cancel()
    events[1].cancel()  # double cancel must not double-decrement
    assert queue.active_count() == 4
    queue.pop()  # pops event 0
    assert queue.active_count() == 3
    queue.clear()
    assert queue.active_count() == 0


def test_cancel_after_pop_does_not_skew_active_count():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    popped = queue.pop()
    assert popped is first
    popped.cancel()  # already fired; only marks the flag
    assert queue.active_count() == 1


def test_cancel_after_clear_does_not_underflow():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.clear()
    event.cancel()
    assert queue.active_count() == 0

"""Tests for named random streams."""

from repro.simcore.rng import RandomStreams


def test_same_seed_same_stream_values():
    a = RandomStreams(seed=5).get("mobility")
    b = RandomStreams(seed=5).get("mobility")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RandomStreams(seed=5)
    first = [streams.get("radio").random() for _ in range(5)]
    second = [streams.get("mobility").random() for _ in range(5)]
    assert first != second


def test_stream_is_cached():
    streams = RandomStreams(seed=1)
    assert streams.get("x") is streams.get("x")
    assert "x" in streams


def test_consuming_one_stream_does_not_affect_another():
    reference_stream = RandomStreams(seed=9).get("b")
    reference = [reference_stream.random() for _ in range(3)]
    streams = RandomStreams(seed=9)
    for _ in range(100):
        streams.get("a").random()
    assert [streams.get("b").random() for _ in range(3)] == reference


def test_reset_restores_sequence():
    streams = RandomStreams(seed=2)
    first = [streams.get("s").random() for _ in range(3)]
    streams.reset(["s"])
    second = [streams.get("s").random() for _ in range(3)]
    assert first == second


def test_spawn_creates_distinct_but_deterministic_child():
    parent = RandomStreams(seed=3)
    child_a = parent.spawn("rep-1")
    child_b = RandomStreams(seed=3).spawn("rep-1")
    other = parent.spawn("rep-2")
    assert child_a.get("x").random() == child_b.get("x").random()
    assert child_a.seed != other.seed
    assert child_a.seed != parent.seed

"""The incremental stepping primitive: Simulator.step / StepOutcome.

``run()`` is required to be a thin loop over ``step()`` — the single
run-loop guarantee the session engine's byte-identity rests on — so these
tests pin the slice semantics (budgets, ``until`` bounds, stop flags,
clock conventions) and assert the loop really is implemented only once.
"""

import inspect

import pytest

from repro.simcore import Simulator, StepOutcome, StopSimulation


def _spaced_events(sim, times):
    fired = []
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append(t))
    return fired


def test_step_fires_bounded_slice_and_reports_budget():
    sim = Simulator(seed=1)
    fired = _spaced_events(sim, [1.0, 2.0, 3.0, 4.0])
    outcome = sim.step(max_events=2)
    assert fired == [1.0, 2.0]
    assert outcome.events_fired == 2
    assert outcome.now == 2.0
    assert outcome.hit_event_budget
    assert not outcome.exhausted
    assert not outcome.queue_empty


def test_step_runs_queue_dry_without_budget():
    sim = Simulator(seed=1)
    fired = _spaced_events(sim, [1.0, 2.0])
    outcome = sim.step()
    assert fired == [1.0, 2.0]
    assert outcome.queue_empty
    assert outcome.exhausted
    assert not outcome.hit_event_budget


def test_step_respects_until_and_does_not_advance_idle_clock():
    sim = Simulator(seed=1)
    fired = _spaced_events(sim, [1.0, 5.0])
    outcome = sim.step(until=3.0)
    assert fired == [1.0]
    assert outcome.reached_until
    assert outcome.exhausted
    # The clock stays at the last fired event; only run()'s window-end
    # convention (advance_clock) moves an idle clock.
    assert sim.now == 1.0
    sim.advance_clock(3.0)
    assert sim.now == 3.0


def test_step_zero_budget_fires_nothing():
    sim = Simulator(seed=1)
    fired = _spaced_events(sim, [1.0])
    outcome = sim.step(max_events=0)
    assert fired == []
    assert outcome.events_fired == 0
    assert outcome.hit_event_budget
    assert sim.now == 0.0


def test_stop_simulation_sets_flag_and_blocks_further_slices():
    sim = Simulator(seed=1)
    fired = _spaced_events(sim, [2.0, 3.0])

    def stopper():
        raise StopSimulation

    sim.schedule_at(1.0, stopper)
    outcome = sim.step()
    assert outcome.stop_requested
    assert outcome.exhausted
    assert fired == []
    assert sim.stop_requested
    # A stopped simulator fires nothing until re-armed.
    again = sim.step()
    assert again.events_fired == 0
    sim.clear_stop()
    resumed = sim.step()
    assert fired == [2.0, 3.0]
    assert resumed.events_fired == 2


def test_stopped_clock_is_not_advanced_by_advance_clock():
    sim = Simulator(seed=1)

    def stopper():
        raise StopSimulation

    sim.schedule_at(1.0, stopper)
    sim.step(until=5.0)
    sim.advance_clock(5.0)
    assert sim.now == 1.0


def test_run_equals_manual_stepping():
    times = [0.5, 1.0, 1.5, 2.5, 4.0]

    whole = Simulator(seed=3)
    fired_whole = _spaced_events(whole, times)
    count = whole.run(until=5.0)

    sliced = Simulator(seed=3)
    fired_sliced = _spaced_events(sliced, times)
    sliced_count = 0
    while True:
        outcome = sliced.step(max_events=2, until=5.0)
        sliced_count += outcome.events_fired
        if outcome.exhausted:
            break
    sliced.advance_clock(5.0)

    assert fired_sliced == fired_whole
    assert sliced_count == count == len(times)
    assert sliced.now == whole.now == 5.0


def test_run_resets_stop_flag_per_window():
    sim = Simulator(seed=1)

    def stopper():
        raise StopSimulation

    sim.schedule_at(1.0, stopper)
    fired = _spaced_events(sim, [2.0])
    sim.run(until=3.0)
    assert sim.now == 1.0  # stopped run keeps the clock where it halted
    # A new run window re-arms the loop (the historical contract).
    sim.run(until=3.0)
    assert fired == [2.0]
    assert sim.now == 3.0


def test_run_max_events_budget():
    sim = Simulator(seed=1)
    fired = _spaced_events(sim, [1.0, 2.0, 3.0])
    count = sim.run(max_events=2)
    assert count == 2
    assert fired == [1.0, 2.0]


def test_events_fired_counter_accumulates_across_windows():
    sim = Simulator(seed=1)
    _spaced_events(sim, [1.0, 2.0, 3.0])
    sim.run(until=2.0)
    assert sim.events_fired == 2
    sim.run(until=4.0)
    assert sim.events_fired == 3
    # Bookkeeping only: the snapshot state contract is unchanged.
    assert "events_fired" not in sim.capture_state()


def test_step_outcome_exhausted_classification():
    empty = StepOutcome(0, 0.0, True, False, False, False)
    stopped = StepOutcome(0, 0.0, False, True, False, False)
    bounded = StepOutcome(0, 0.0, False, False, True, False)
    budget = StepOutcome(5, 0.0, False, False, False, True)
    assert empty.exhausted and stopped.exhausted and bounded.exhausted
    assert not budget.exhausted


def test_run_is_a_loop_over_step_not_a_second_event_loop():
    """Deprecation hygiene: exactly one run-loop implementation exists.

    ``step`` owns the pop-and-fire loop; ``run`` must compose it (plus the
    window-end clock convention) and never touch the queue directly.
    """
    run_source = inspect.getsource(Simulator.run)
    step_source = inspect.getsource(Simulator.step)
    assert ".step(" in run_source
    assert "advance_clock" in run_source
    for queue_primitive in ("pop", "peek_time", "_queue"):
        assert queue_primitive not in run_source
        assert queue_primitive in step_source

"""Tests for metric collection."""

import math

import pytest

from repro.simcore.monitor import Counter, Gauge, Monitor, SampleSeries, TimeSeries


def test_counter_accumulates():
    counter = Counter("bytes")
    counter.add(10)
    counter.add(5.5)
    assert counter.value == 15.5
    assert counter.increments == 2


def test_counter_is_strictly_monotonic():
    counter = Counter("bytes")
    counter.add(10)
    with pytest.raises(ValueError, match="monotonic"):
        counter.add(-1)
    assert counter.value == 10
    assert counter.increments == 1
    counter.add(0)  # zero is a legal (no-op) delta


def test_gauge_moves_both_directions():
    gauge = Gauge("queue.depth")
    gauge.set(5.0)
    gauge.add(2.0)
    gauge.add(-4.0)
    assert gauge.value == 3.0
    assert gauge.updates == 3


def test_sample_series_statistics():
    series = SampleSeries("latency")
    for value in [1.0, 2.0, 3.0, 4.0]:
        series.add(value)
    assert series.mean() == 2.5
    assert series.minimum() == 1.0
    assert series.maximum() == 4.0
    assert series.percentile(50) == 2.5
    assert series.percentile(0) == 1.0
    assert series.percentile(100) == 4.0
    assert series.count == 4


def test_sample_series_empty_is_nan():
    series = SampleSeries("empty")
    assert math.isnan(series.mean())
    assert math.isnan(series.percentile(50))
    assert math.isnan(series.stddev())


def test_sample_percentile_rejects_bad_q():
    series = SampleSeries("x")
    series.add(1.0)
    with pytest.raises(ValueError):
        series.percentile(101)


def test_timeseries_time_weighted_mean():
    series = TimeSeries("load")
    series.record(0.0, 0.0)
    series.record(10.0, 1.0)   # value 0 held for 10 s
    series.record(20.0, 1.0)   # value 1 held for 10 s
    assert series.time_weighted_mean() == pytest.approx(0.5)
    # Extending the horizon holds the final value longer.
    assert series.time_weighted_mean(until=40.0) == pytest.approx((0 * 10 + 1 * 30) / 40)


def test_timeseries_rejects_time_going_backwards():
    series = TimeSeries("x")
    series.record(5.0, 1.0)
    with pytest.raises(ValueError):
        series.record(4.0, 2.0)


def test_timeseries_last_and_max():
    series = TimeSeries("x")
    assert series.last() is None
    series.record(0.0, 3.0)
    series.record(1.0, 7.0)
    series.record(2.0, 5.0)
    assert series.last() == 5.0
    assert series.maximum() == 7.0


def test_monitor_creates_and_reuses_metrics():
    monitor = Monitor()
    monitor.counter("a").add()
    monitor.counter("a").add()
    assert monitor.counter_value("a") == 2
    assert monitor.counter_value("missing", default=-1) == -1
    assert monitor.sample("s") is monitor.sample("s")
    assert monitor.timeseries("t") is monitor.timeseries("t")


def test_monitor_gauge_registry_and_summary_key():
    monitor = Monitor()
    monitor.gauge("g").set(4.0)
    assert monitor.gauge("g") is monitor.gauge("g")
    assert monitor.summary()["gauge.g"] == 4.0


def test_monitor_gauge_survives_missing_registry():
    # Monitors unpickled from pre-Gauge snapshot artifacts lack the dict.
    monitor = Monitor()
    monitor.gauges = None
    monitor.gauge("g").add(1.0)
    assert monitor.summary()["gauge.g"] == 1.0


def test_monitor_summary_contains_all_kinds():
    monitor = Monitor()
    monitor.counter("c").add(3)
    monitor.sample("s").add(1.0)
    monitor.sample("s").add(2.0)
    monitor.timeseries("t").record(0.0, 1.0)
    monitor.timeseries("t").record(1.0, 2.0)
    summary = monitor.summary()
    assert summary["counter.c"] == 3
    assert summary["sample.s.mean"] == 1.5
    assert summary["sample.s.count"] == 2
    assert "series.t.mean" in summary
    assert summary["series.t.last"] == 2.0

"""Tests for the coded VEC auction baseline."""

import pytest

from repro.baselines.coded_vec_auction import (
    CodedAuctionPlacement,
    CodedVECAuction,
    choose_redundancy,
    coded_redundancy,
    completion_probability,
)
from repro.core.candidate import CandidateScore
from repro.core.models import NeighborDescription, TaskDescription
from repro.geometry.vector import Vec2


def candidate(name, headroom=1e9):
    neighbor = NeighborDescription(
        name=name,
        position=Vec2(10, 0),
        velocity=Vec2(0, 0),
        distance_m=10.0,
        link_rate_bps=1e7,
        link_snr_db=20.0,
        compute_headroom_ops=headroom,
        queue_length=0,
        data_summary={},
        trust_score=1.0,
        beacon_age_s=0.1,
        predicted_contact_time_s=60.0,
    )
    return CandidateScore(neighbor, True, 0.5, 0.1)


def test_coded_redundancy_overhead():
    assert coded_redundancy(4, 2) == 2.0
    with pytest.raises(ValueError):
        coded_redundancy(1, 2)


def test_completion_probability_basics():
    assert completion_probability(1, 1, 0.8) == pytest.approx(0.8)
    assert completion_probability(3, 1, 0.8) == pytest.approx(1 - 0.2 ** 3)
    assert completion_probability(3, 3, 0.8) == pytest.approx(0.8 ** 3)
    with pytest.raises(ValueError):
        completion_probability(2, 1, 1.5)


def test_completion_probability_increases_with_n():
    p2 = completion_probability(2, 1, 0.6)
    p4 = completion_probability(4, 1, 0.6)
    assert p4 > p2


def test_choose_redundancy_meets_target():
    n = choose_redundancy(per_provider_success=0.8, target_success=0.99, k=1)
    assert completion_probability(n, 1, 0.8) >= 0.99
    # Unreliable providers hit the cap.
    assert choose_redundancy(0.1, 0.999, k=1, max_n=4) == 4


def test_allocation_buys_enough_providers():
    mechanism = CodedVECAuction(k=1, target_success=0.95)
    task = TaskDescription(function_name="f", requester="r")
    candidates = [candidate(f"p{i}") for i in range(5)]
    allocation = mechanism.allocate(task, candidates, per_provider_success=0.7)
    assert allocation is not None
    assert allocation.n == len(allocation.providers)
    assert completion_probability(allocation.n, 1, 0.7) >= 0.95 or allocation.n == 5
    assert mechanism.allocate(task, []) is None


def test_placement_returns_all_winners_for_redundant_dispatch():
    placement = CodedAuctionPlacement(k=1, target_success=0.95, per_provider_success=0.7)
    task = TaskDescription(function_name="f", requester="r")
    candidates = [candidate(f"p{i}") for i in range(4)]
    chosen = placement.choose(candidates, task, count=1)
    assert len(chosen) >= 2          # coding demands more than one provider
    assert len({c.name for c in chosen}) == len(chosen)
    assert placement.choose([], task) == []

"""Tests for the simple placement baselines (local-only, nearest)."""

from repro.baselines.greedy_nearest import NearestNeighborPlacement
from repro.baselines.local_only import LocalOnlyPlacement
from repro.core.candidate import CandidateScore
from repro.core.models import NeighborDescription, TaskDescription
from repro.geometry.vector import Vec2


def candidate(name, distance, score=0.5):
    neighbor = NeighborDescription(
        name=name,
        position=Vec2(distance, 0),
        velocity=Vec2(0, 0),
        distance_m=distance,
        link_rate_bps=1e7,
        link_snr_db=20.0,
        compute_headroom_ops=1e9,
        queue_length=0,
        data_summary={},
        trust_score=1.0,
        beacon_age_s=0.1,
        predicted_contact_time_s=60.0,
    )
    return CandidateScore(neighbor, True, score, 0.1)


TASK = TaskDescription(function_name="f")


def test_local_only_always_empty():
    policy = LocalOnlyPlacement()
    assert policy.choose([candidate("a", 10)], TASK) == []
    assert policy.choose([], TASK) == []


def test_nearest_neighbor_orders_by_distance():
    policy = NearestNeighborPlacement()
    candidates = [candidate("far", 100, score=0.99), candidate("near", 10, score=0.01)]
    chosen = policy.choose(candidates, TASK, count=2)
    assert [c.name for c in chosen] == ["near", "far"]


def test_nearest_neighbor_ties_break_by_name():
    policy = NearestNeighborPlacement()
    candidates = [candidate("b", 10), candidate("a", 10)]
    assert [c.name for c in policy.choose(candidates, TASK, count=2)] == ["a", "b"]

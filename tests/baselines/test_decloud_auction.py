"""Tests for the DeCloud-style double auction."""

import pytest

from repro.baselines.decloud_auction import (
    Ask,
    AuctionPlacement,
    Bid,
    DoubleAuction,
    ask_price_for,
    bid_price_for,
)
from repro.core.candidate import CandidateScore
from repro.core.models import NeighborDescription, TaskDescription
from repro.geometry.vector import Vec2


def candidate(name, headroom=1e9, queue=0):
    neighbor = NeighborDescription(
        name=name,
        position=Vec2(10, 0),
        velocity=Vec2(0, 0),
        distance_m=10.0,
        link_rate_bps=1e7,
        link_snr_db=20.0,
        compute_headroom_ops=headroom,
        queue_length=queue,
        data_summary={},
        trust_score=1.0,
        beacon_age_s=0.1,
        predicted_contact_time_s=60.0,
    )
    return CandidateScore(neighbor, True, 0.5, 0.1)


def test_no_trade_when_bids_below_asks():
    auction = DoubleAuction()
    outcome = auction.clear([Bid("r", 1.0)], [Ask("p", 5.0)])
    assert outcome.trade_count == 0
    assert outcome.unmatched_bids and outcome.unmatched_asks


def test_single_crossing_pair_trades():
    auction = DoubleAuction()
    outcome = auction.clear([Bid("r", 5.0)], [Ask("p", 1.0)])
    assert outcome.trade_count == 1
    trade = outcome.trades[0]
    assert trade.requester == "r" and trade.provider == "p"
    assert 1.0 <= trade.clearing_price <= 5.0


def test_multiple_pairs_cheapest_asks_win():
    auction = DoubleAuction()
    bids = [Bid("r1", 10.0), Bid("r2", 9.0), Bid("r3", 2.0)]
    asks = [Ask("p1", 1.0), Ask("p2", 3.0), Ask("p3", 20.0)]
    outcome = auction.clear(bids, asks)
    providers = {t.provider for t in outcome.trades}
    assert outcome.trade_count >= 1
    assert "p3" not in providers
    # Clearing price is individually rational for every trade.
    for trade in outcome.trades:
        assert trade.ask <= outcome.clearing_price <= trade.bid


def test_truthfulness_trade_reduction_price_between_marginal_pair():
    auction = DoubleAuction()
    bids = [Bid("r1", 10.0), Bid("r2", 4.0)]
    asks = [Ask("p1", 2.0), Ask("p2", 6.0)]
    outcome = auction.clear(bids, asks)
    # Only the first pair can trade; price must sit in [2, 10].
    assert outcome.trade_count == 1
    assert 2.0 <= outcome.clearing_price <= 10.0


def test_ask_price_reflects_load_and_headroom():
    idle_rich = candidate("rich", headroom=1e10, queue=0)
    busy_poor = candidate("poor", headroom=1e8, queue=3)
    assert ask_price_for(busy_poor) > ask_price_for(idle_rich)


def test_bid_price_reflects_urgency_and_size():
    relaxed = TaskDescription(function_name="f", operations=1e8, deadline_s=0.0)
    urgent = TaskDescription(function_name="f", operations=1e8, deadline_s=0.2)
    big = TaskDescription(function_name="f", operations=5e9, deadline_s=0.0)
    assert bid_price_for(urgent) > bid_price_for(relaxed)
    assert bid_price_for(big) > bid_price_for(relaxed)


def test_auction_placement_prefers_cheap_provider():
    placement = AuctionPlacement()
    task = TaskDescription(function_name="f", operations=1e9, deadline_s=1.0, requester="r")
    candidates = [candidate("expensive", headroom=1e7, queue=4), candidate("cheap", headroom=1e10)]
    chosen = placement.choose(candidates, task, count=1)
    assert chosen[0].name == "cheap"
    assert placement.rounds


def test_auction_placement_empty_candidates():
    assert AuctionPlacement().choose([], TaskDescription(function_name="f")) == []

"""Tests for the smart-contract allocation baseline."""

from repro.baselines.smart_contract import (
    ContractPlacement,
    Ledger,
    SmartContractAllocator,
)
from repro.core.candidate import CandidateScore
from repro.core.models import NeighborDescription, TaskDescription
from repro.geometry.vector import Vec2


def candidate(name):
    neighbor = NeighborDescription(
        name=name,
        position=Vec2(10, 0),
        velocity=Vec2(0, 0),
        distance_m=10.0,
        link_rate_bps=1e7,
        link_snr_db=20.0,
        compute_headroom_ops=1e9,
        queue_length=0,
        data_summary={},
        trust_score=1.0,
        beacon_age_s=0.1,
        predicted_contact_time_s=60.0,
    )
    return CandidateScore(neighbor, True, 0.5, 0.1)


def test_ledger_registration_and_claims():
    ledger = Ledger()
    ledger.register("p1")
    ledger.register("p2")
    assert ledger.claim(1, "p1") is not None
    assert ledger.claim(1, "p2") is None          # already claimed
    assert ledger.accounts["p1"].active_claims == 1


def test_settlement_success_and_failure():
    ledger = Ledger()
    ledger.register("p", collateral=5.0)
    ledger.claim(1, "p")
    ledger.settle_success(1)
    account = ledger.accounts["p"]
    assert account.completed == 1
    assert account.active_claims == 0
    ledger.claim(2, "p")
    ledger.settle_failure(2, slash_amount=3.0)
    assert account.slashed == 1
    assert account.collateral == 2.0
    assert account.reputation < 1.0


def test_slashed_provider_becomes_ineligible():
    ledger = Ledger(min_collateral=5.0)
    ledger.register("p", collateral=6.0)
    ledger.claim(1, "p")
    ledger.settle_failure(1, slash_amount=3.0)
    assert not ledger.eligible("p")
    assert ledger.claim(2, "p") is None


def test_allocator_first_come_first_served():
    allocator = SmartContractAllocator()
    task = TaskDescription(function_name="f")
    winner = allocator.allocate(task, ["p1", "p2"])
    assert winner == "p1"
    allocator.complete(task.task_id, success=True)
    assert allocator.ledger.accounts["p1"].completed == 1


def test_allocator_skips_ineligible_provider():
    ledger = Ledger(min_collateral=5.0)
    ledger.register("broke", collateral=0.0)
    allocator = SmartContractAllocator(ledger)
    task = TaskDescription(function_name="f")
    assert allocator.allocate(task, ["broke", "funded"]) == "funded"


def test_contract_placement_returns_winner_first():
    placement = ContractPlacement()
    task = TaskDescription(function_name="f")
    chosen = placement.choose([candidate("a"), candidate("b")], task, count=2)
    assert chosen[0].name == "a"
    assert len(chosen) == 2
    assert placement.choose([], task) == []


def test_block_height_advances_per_allocation():
    allocator = SmartContractAllocator()
    before = allocator.ledger.block_height
    allocator.allocate(TaskDescription(function_name="f"), ["p"])
    assert allocator.ledger.block_height == before + 1

"""Tests for the cloud-offload baseline."""

from repro.baselines.cloud_offload import CloudOffloadClient, CloudPerceptionService
from repro.data.datatypes import DataType
from repro.data.pond import DataPond
from repro.data.sensors import Detection, SensorFrame
from repro.geometry.vector import Vec2
from repro.radio.cellular import CellularNetwork
from repro.simcore.simulator import Simulator


def build(frame_detections, upload_period=0.5):
    sim = Simulator(seed=12)
    cellular = CellularNetwork(sim)
    service = CloudPerceptionService(sim, cellular, fusion_period=0.5)
    pond = DataPond("car")
    pond.store(
        SensorFrame(
            data_type=DataType.LIDAR_SCAN,
            timestamp=0.0,
            origin=Vec2(0, 0),
            detections=[Detection(l, p, 0.9) for l, p in frame_detections],
            range_m=80.0,
        )
    )
    client = CloudOffloadClient(sim, "car", pond, cellular, service, upload_period=upload_period)
    return sim, cellular, service, client


def test_client_uploads_raw_frames_and_receives_fused_result():
    sim, cellular, service, client = build([("ped", Vec2(10, 0))])
    sim.run(until=10.0)
    assert client.frames_uploaded >= 1
    assert service.fusions_performed >= 1
    assert "ped" in client.known_labels()
    assert client.result_latencies and min(client.result_latencies) > 0


def test_cellular_bytes_dominated_by_raw_uplink():
    sim, cellular, service, client = build([("ped", Vec2(10, 0))])
    sim.run(until=10.0)
    assert cellular.bytes_uplinked > cellular.bytes_downlinked
    assert cellular.bytes_uplinked >= 1_000_000   # raw lidar frames are big


def test_no_results_before_any_upload():
    sim = Simulator(seed=1)
    cellular = CellularNetwork(sim)
    service = CloudPerceptionService(sim, cellular)
    empty_pond = DataPond("car")
    client = CloudOffloadClient(sim, "car", empty_pond, cellular, service)
    sim.run(until=5.0)
    assert client.frames_uploaded == 0
    assert client.known_labels() == []

"""SimulationSession: the lifecycle state machine around one run window."""

import pytest

from repro.scenarios import build_scenario
from repro.service import (
    SessionState,
    SessionStateError,
    SimulationSession,
)

DURATION = 6.0


def _session(seed=0, step_slice=100, **kwargs):
    scenario = build_scenario("urban-grid", n=4, seed=seed)
    return SimulationSession(
        "s-test", scenario, duration=DURATION, step_slice=step_slice, **kwargs
    )


def _solo_report(seed=0):
    return build_scenario("urban-grid", n=4, seed=seed).run(DURATION).as_dict()


# ------------------------------------------------------------- state machine


def test_lifecycle_happy_path():
    session = _session()
    assert session.state is SessionState.CREATED
    session.start()
    assert session.state is SessionState.RUNNING
    session.pause()
    assert session.state is SessionState.PAUSED
    session.resume()
    assert session.state is SessionState.RUNNING
    while session.state is SessionState.RUNNING:
        session.step()
    assert session.state is SessionState.FINISHED
    assert session.report is not None


def test_invalid_transitions_raise_state_errors():
    session = _session()
    with pytest.raises(SessionStateError, match="needs created"):
        session.start()  # must start from CREATED...
        session.start()  # ...twice is a 409
    with pytest.raises(SessionStateError, match="needs paused"):
        session.resume()
    with pytest.raises(SessionStateError, match="needs paused"):
        session.evict()
    session.pause()
    with pytest.raises(SessionStateError, match="needs running"):
        session.pause()
    with pytest.raises(SessionStateError, match="needs evicted"):
        session.restore()


def test_step_requires_an_open_session():
    session = _session()
    with pytest.raises(SessionStateError):
        session.step()
    session.fast_forward()
    with pytest.raises(SessionStateError):
        session.step()


def test_step_allowed_while_paused():
    session = _session()
    session.start()
    session.pause()
    outcome = session.step(10)
    assert outcome.events_fired == 10
    assert session.state is SessionState.PAUSED


def test_constructor_validation():
    scenario = build_scenario("urban-grid", n=4, seed=0)
    with pytest.raises(ValueError, match="duration"):
        SimulationSession("x", scenario, duration=0.0)
    with pytest.raises(ValueError, match="step_slice"):
        SimulationSession("x", scenario, step_slice=0)


# -------------------------------------------------------------- determinism


def test_sliced_session_report_is_byte_identical_to_solo_run():
    session = _session(seed=9, step_slice=61)
    report = session.fast_forward()
    assert report.as_dict() == _solo_report(seed=9)
    assert session.ticks > 1  # actually sliced, not one big run


def test_evict_restore_round_trip_is_byte_identical():
    session = _session(seed=4)
    session.start()
    session.step(80)
    session.pause()
    session.evict()
    assert session.state is SessionState.EVICTED
    assert session.scenario is None  # the object graph was dropped
    with pytest.raises(SessionStateError):
        session.step()
    session.restore()
    assert session.state is SessionState.PAUSED
    session.resume()
    session.fast_forward()
    assert session.report.as_dict() == _solo_report(seed=4)


def test_evict_to_path_round_trip(tmp_path):
    target = tmp_path / "evicted.reprosnap"
    session = _session(seed=4)
    session.start()
    session.step(80)
    session.pause()
    session.evict(str(target))
    assert target.exists()
    session.restore()
    session.resume()
    session.fast_forward()
    assert session.report.as_dict() == _solo_report(seed=4)


# ------------------------------------------------------------------- events


def test_bus_stream_carries_ticks_states_and_final_report():
    session = _session(seed=1, step_slice=97)
    events = []
    session.bus.subscribe(events.append)
    session.fast_forward()
    kinds = [event["type"] for event in events]
    assert kinds.count("report") == 1
    assert kinds[-1] == "report"
    assert "tick" in kinds
    state_changes = [
        (event["from"], event["to"]) for event in events if event["type"] == "state"
    ]
    assert state_changes[0] == ("created", "running")
    assert state_changes[-1] == ("running", "finished")
    report_event = events[-1]
    assert report_event["report"] == session.report.as_dict()
    ticks = [event for event in events if event["type"] == "tick"]
    assert ticks[-1]["total_events"] == session.events_fired
    # urban-grid scenarios carry a topology observer -> topology events too.
    assert any(event["type"] == "topology" for event in events)


def test_status_and_interim_report():
    session = _session(seed=2)
    status = session.status()
    assert status["state"] == "created"
    assert status["scenario"] == "urban_grid"  # the scenario's own name
    assert status["node_count"] == 4
    assert status["progress"] is None  # no window yet
    interim = session.interim_report()
    assert interim["tasks_submitted"] == 0
    session.start()
    session.step(50)
    status = session.status()
    assert 0.0 <= status["progress"] <= 1.0
    assert status["events_fired"] == 50
    session.fast_forward()
    status = session.status()
    assert status["state"] == "finished"
    assert status["progress"] == 1.0
    assert session.interim_report() == session.report.as_dict()


def test_evicted_status_keeps_last_known_clock():
    session = _session(seed=2)
    session.start()
    session.step(50)
    now_before = session.status()["now"]
    session.pause()
    session.evict()
    assert session.status()["now"] == now_before
    with pytest.raises(SessionStateError):
        session.interim_report()

# -------------------------------------------------------------- failed state


def test_fail_is_terminal_and_drops_the_scenario():
    session = _session()
    session.start()
    events = []
    session.bus.subscribe(events.append)
    session.fail(RuntimeError("boom"))
    assert session.state is SessionState.FAILED
    assert session.error == "RuntimeError: boom"
    assert session.scenario is None
    assert session.status()["state"] == "failed"
    assert session.status()["error"] == "RuntimeError: boom"
    assert any(
        e["type"] == "error" and e["error"] == "RuntimeError: boom"
        for e in events
    )
    # Terminal: no lifecycle operation applies any more.
    for operation in (
        session.start, session.pause, session.resume,
        session.step, session.snapshot, session.evict,
        session.restore, session.interim_report,
    ):
        with pytest.raises(SessionStateError):
            operation()


def test_fail_requires_a_live_window():
    session = _session()
    with pytest.raises(SessionStateError):
        session.fail("too early")
    session.start()
    while session.state is SessionState.RUNNING:
        session.step()
    with pytest.raises(SessionStateError):
        session.fail("too late")


def test_healthy_sessions_report_no_error():
    session = _session()
    assert session.status()["error"] is None

"""The HTTP/WebSocket facade, driven in-process through ASGITestClient."""

import pytest

from repro.service import SessionRegistry, create_app
from repro.service.testing import ASGITestClient

DURATION = 5.0


@pytest.fixture()
def client():
    with ASGITestClient(create_app(auto_drive=False)) as test_client:
        yield test_client


def _create(client, **overrides):
    body = {
        "scenario": "urban-grid",
        "n": 4,
        "seed": 0,
        "duration": DURATION,
        "step_slice": 100,
    }
    body.update(overrides)
    response = client.post("/sessions", body)
    assert response.status == 201, response.body
    return response.json()


# ---------------------------------------------------------------- lifecycle


def test_healthz_and_empty_listing(client):
    assert client.get("/healthz").json() == {
        "status": "ok",
        "sessions": 0,
        "states": {
            "created": 0,
            "running": 0,
            "paused": 0,
            "finished": 0,
            "evicted": 0,
            "failed": 0,
        },
        "scheduler_passes": 0,
        "sessions_stepped": 0,
    }
    assert client.get("/sessions").json() == {"sessions": []}


def test_healthz_tracks_session_states_and_scheduler_totals(client):
    # Pin the extended /healthz schema: per-state counts move as sessions
    # do, and the scheduler odometers climb with driven passes.
    first = _create(client)
    second = _create(client, seed=1)
    client.post(f"/sessions/{first['id']}/start")
    payload = client.get("/healthz").json()
    assert payload["sessions"] == 2
    assert payload["states"]["running"] == 1
    assert payload["states"]["created"] == 1

    client.post(f"/sessions/{second['id']}/start")
    client.post(f"/sessions/{first['id']}/fast-forward")
    client.post(f"/sessions/{second['id']}/pause")
    payload = client.get("/healthz").json()
    assert payload["states"]["finished"] == 1
    assert payload["states"]["paused"] == 1
    assert payload["states"]["running"] == 0
    assert set(payload) == {
        "status", "sessions", "states", "scheduler_passes", "sessions_stepped",
    }


def test_create_start_step_and_report(client):
    created = _create(client)
    assert created["state"] == "created"
    sid = created["id"]
    assert client.get(f"/sessions/{sid}").json()["state"] == "created"

    started = client.post(f"/sessions/{sid}/start").json()
    assert started["state"] == "running"

    stepped = client.post(f"/sessions/{sid}/step", {"max_events": 40}).json()
    assert stepped["outcome"]["events_fired"] == 40
    assert stepped["outcome"]["hit_event_budget"] is True
    assert stepped["outcome"]["exhausted"] is False
    assert stepped["status"]["events_fired"] == 40

    finished = client.post(f"/sessions/{sid}/fast-forward").json()
    assert finished["status"]["state"] == "finished"
    assert finished["report"]["duration_s"] == DURATION

    report = client.get(f"/sessions/{sid}/report").json()["report"]
    assert report == finished["report"]


def test_create_with_start_flag_and_underscored_name(client):
    created = _create(client, scenario="urban_grid", start=True)
    assert created["state"] == "running"


def test_pause_resume_evict_restore_cycle(client):
    sid = _create(client, start=True)["id"]
    client.post(f"/sessions/{sid}/step")
    assert client.post(f"/sessions/{sid}/pause").json()["state"] == "paused"
    assert client.post(f"/sessions/{sid}/evict").json()["state"] == "evicted"
    assert client.post(f"/sessions/{sid}/restore").json()["state"] == "paused"
    assert client.post(f"/sessions/{sid}/resume").json()["state"] == "running"
    client.post(f"/sessions/{sid}/fast-forward")
    assert client.get(f"/sessions/{sid}").json()["state"] == "finished"


def test_snapshot_blob_and_server_side_write(client, tmp_path):
    sid = _create(client, start=True)["id"]
    client.post(f"/sessions/{sid}/step")
    blob = client.post(f"/sessions/{sid}/snapshot")
    assert blob.status == 200
    assert blob.headers["content-type"] == "application/octet-stream"
    assert len(blob.body) > 0

    target = tmp_path / "session.reprosnap"
    written = client.post(f"/sessions/{sid}/snapshot", {"path": str(target)})
    assert written.json() == {"written": str(target), "bytes": len(blob.body)}
    assert target.stat().st_size == len(blob.body)


def test_delete_forgets_session(client):
    sid = _create(client)["id"]
    assert client.delete(f"/sessions/{sid}").json() == {"deleted": sid}
    assert client.get(f"/sessions/{sid}").status == 404


# ------------------------------------------------------------ error mapping


def test_unknown_session_is_404(client):
    assert client.get("/sessions/s9999").status == 404
    assert client.post("/sessions/s9999/step").status == 404
    assert client.get("/nope").status == 404
    assert client.get("/sessions/s9999/step/extra").status == 404


def test_lifecycle_violation_is_409(client):
    sid = _create(client)["id"]
    response = client.post(f"/sessions/{sid}/pause")  # created, not running
    assert response.status == 409
    assert "created" in response.json()["error"]


def test_bad_parameters_are_400(client):
    assert client.post("/sessions", {}).status == 400
    assert client.post("/sessions", {"scenario": "nope"}).status == 400
    assert (
        client.post("/sessions", {"scenario": "urban-grid", "duration": -1}).status
        == 400
    )


def test_method_not_allowed_is_405(client):
    assert client.delete("/sessions").status == 405
    sid = _create(client)["id"]
    assert client.post(f"/sessions/{sid}").status == 405
    assert client.get(f"/sessions/{sid}/pause").status == 405


# ---------------------------------------------------------------- streaming


def test_websocket_stream_hello_ticks_and_report(client):
    sid = _create(client, start=True)["id"]
    with client.websocket(f"/sessions/{sid}/stream") as ws:
        assert ws.accepted
        hello = ws.receive_json()
        assert hello["type"] == "hello"
        assert hello["id"] == sid
        client.post(f"/sessions/{sid}/step", {"max_events": 30})
        tick = ws.receive_json()
        assert tick["type"] == "tick"
        assert tick["events_fired"] == 30
        client.post(f"/sessions/{sid}/fast-forward")
        event = tick
        while event["type"] != "report":
            event = ws.receive_json()
        assert event["report"]["duration_s"] == DURATION
        # After the report the app closes the stream.
        with pytest.raises(EOFError):
            ws.receive_json()
        assert ws.close_code == 1000


def test_websocket_replays_report_for_finished_session(client):
    sid = _create(client, start=True)["id"]
    client.post(f"/sessions/{sid}/fast-forward")
    with client.websocket(f"/sessions/{sid}/stream") as ws:
        assert ws.receive_json()["type"] == "hello"
        assert ws.receive_json()["type"] == "report"
        with pytest.raises(EOFError):
            ws.receive_json()


def test_websocket_unknown_session_closes_4404(client):
    ws = client.websocket("/sessions/s9999/stream")
    assert not ws.accepted
    assert ws.close_code == 4404
    assert client.websocket("/bad/path").close_code == 4404


# --------------------------------------------------------------- auto-drive


def test_auto_drive_advances_running_sessions_in_background():
    registry = SessionRegistry(step_slice=200)
    with ASGITestClient(create_app(registry)) as client:
        sid = _create(client)["id"]
        client.post(f"/sessions/{sid}/start")
        for _ in range(200):
            client.run_loop(0.01)
            if client.get(f"/sessions/{sid}").json()["state"] == "finished":
                break
        assert client.get(f"/sessions/{sid}").json()["state"] == "finished"

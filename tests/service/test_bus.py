"""The subscriber bus: sync callbacks plus bounded asyncio queue endpoints."""

import asyncio

from repro.service.bus import SubscriberBus


def test_sync_subscribers_receive_published_events():
    bus = SubscriberBus()
    seen = []
    callback = seen.append
    bus.subscribe(callback)
    bus.publish({"type": "tick", "n": 1})
    bus.publish({"type": "tick", "n": 2})
    assert [event["n"] for event in seen] == [1, 2]
    assert bus.published == 2
    bus.unsubscribe(callback)
    bus.publish({"type": "tick", "n": 3})
    assert len(seen) == 2


def test_queue_endpoint_receives_events():
    async def scenario():
        bus = SubscriberBus()
        queue = bus.connect_queue()
        assert bus.subscriber_count == 1
        bus.publish({"type": "tick", "n": 1})
        event = await asyncio.wait_for(queue.get(), 1.0)
        assert event["n"] == 1
        bus.disconnect_queue(queue)
        assert bus.subscriber_count == 0

    asyncio.run(scenario())


def test_full_queue_drops_oldest_never_blocks():
    async def scenario():
        bus = SubscriberBus()
        queue = bus.connect_queue(maxsize=3)
        for n in range(6):
            bus.publish({"n": n})
        # The three newest survive; publish never blocked.
        survivors = [queue.get_nowait()["n"] for _ in range(3)]
        assert survivors == [3, 4, 5]
        assert bus.dropped == 3

    asyncio.run(scenario())


def test_failing_subscriber_does_not_break_others():
    bus = SubscriberBus()
    seen = []

    def bad(event):
        raise RuntimeError("subscriber bug")

    bus.subscribe(bad)
    bus.subscribe(seen.append)
    bus.publish({"n": 1})
    assert [event["n"] for event in seen] == [1]
    assert bus.callback_errors == 1

"""The bundled stdlib ASGI server, exercised over real TCP sockets.

HTTP requests go through ``urllib``; the WebSocket handshake and framing
are driven by a tiny raw-socket client below (masked client frames, as RFC
6455 requires of clients), so the server's frame codec is tested against
bytes it does not produce itself.
"""

import asyncio
import base64
import hashlib
import json
import os
import socket
import struct
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import create_app
from repro.service.httpd import WS_GUID, StdlibASGIServer

DURATION = 4.0


class _ServerThread:
    """The stdlib server on an ephemeral port, on a background loop."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.app = create_app(auto_drive=False)
        self.server = StdlibASGIServer(self.app, "127.0.0.1", 0)
        self.loop.run_until_complete(self.server.start())
        self.port = self.server.port
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        try:
            self.loop.run_until_complete(self.server.serve_forever())
        except asyncio.CancelledError:
            pass

    def stop(self):
        self.loop.call_soon_threadsafe(
            lambda: [task.cancel() for task in asyncio.all_tasks(self.loop)]
        )
        self._thread.join(timeout=5)

    def request(self, method, path, body=None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}", data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=5) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def server():
    srv = _ServerThread()
    yield srv
    srv.stop()


# --------------------------------------------------------------------- HTTP


def test_full_session_lifecycle_over_tcp(server):
    status, payload = server.request("GET", "/healthz")
    assert status == 200 and payload["status"] == "ok"

    status, created = server.request(
        "POST",
        "/sessions",
        {"scenario": "urban-grid", "n": 4, "seed": 0, "duration": DURATION,
         "start": True},
    )
    assert status == 201
    sid = created["id"]

    status, stepped = server.request(
        "POST", f"/sessions/{sid}/step", {"max_events": 25}
    )
    assert status == 200
    assert stepped["outcome"]["events_fired"] == 25

    status, finished = server.request("POST", f"/sessions/{sid}/fast-forward")
    assert status == 200
    assert finished["status"]["state"] == "finished"
    assert finished["report"]["duration_s"] == DURATION

    status, _ = server.request("DELETE", f"/sessions/{sid}")
    assert status == 200


def test_error_statuses_over_tcp(server):
    assert server.request("GET", "/sessions/s9999")[0] == 404
    assert server.request("POST", "/sessions", {})[0] == 400


def test_keep_alive_serves_multiple_requests_per_connection(server):
    with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
        for _ in range(2):
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n"
            )
            head = b""
            while b"\r\n\r\n" not in head:
                head += sock.recv(4096)
            headers, _, body_start = head.partition(b"\r\n\r\n")
            assert headers.startswith(b"HTTP/1.1 200")
            length = int(
                [line for line in headers.split(b"\r\n")
                 if line.lower().startswith(b"content-length")][0].split(b":")[1]
            )
            body = body_start
            while len(body) < length:
                body += sock.recv(4096)
            assert json.loads(body[:length])["status"] == "ok"


# ---------------------------------------------------------------- WebSocket


def _mask(payload: bytes) -> bytes:
    key = os.urandom(4)
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return key + masked


def _send_frame(sock, opcode: int, payload: bytes) -> None:
    length = len(payload)
    head = bytes([0x80 | opcode])
    if length < 126:
        head += bytes([0x80 | length])
    else:
        head += bytes([0x80 | 126]) + struct.pack("!H", length)
    sock.sendall(head + _mask(payload))


def _recv_exact(sock, n: int) -> bytes:
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise EOFError("socket closed")
        data += chunk
    return data


def _recv_frame(sock):
    first = _recv_exact(sock, 2)
    opcode = first[0] & 0x0F
    length = first[1] & 0x7F
    if length == 126:
        length = struct.unpack("!H", _recv_exact(sock, 2))[0]
    elif length == 127:
        length = struct.unpack("!Q", _recv_exact(sock, 8))[0]
    return opcode, _recv_exact(sock, length)


def test_websocket_stream_over_tcp(server):
    _, created = server.request(
        "POST",
        "/sessions",
        {"scenario": "urban-grid", "n": 4, "seed": 1, "duration": DURATION,
         "start": True},
    )
    sid = created["id"]
    key = base64.b64encode(os.urandom(16)).decode()
    expected_accept = base64.b64encode(
        hashlib.sha1((key + WS_GUID).encode()).digest()
    ).decode()
    with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
        sock.sendall(
            (
                f"GET /sessions/{sid}/stream HTTP/1.1\r\n"
                "Host: localhost\r\nUpgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode()
        )
        head = b""
        while b"\r\n\r\n" not in head:
            head += sock.recv(4096)
        assert head.startswith(b"HTTP/1.1 101")
        assert expected_accept.encode() in head

        opcode, payload = _recv_frame(sock)
        assert opcode == 0x1
        hello = json.loads(payload)
        assert hello["type"] == "hello" and hello["id"] == sid

        # A ping is answered with a pong carrying the same payload.
        _send_frame(sock, 0x9, b"ping-me")
        opcode, payload = _recv_frame(sock)
        assert (opcode, payload) == (0xA, b"ping-me")

        # Advance the session over HTTP; the tick arrives on the stream.
        server.request("POST", f"/sessions/{sid}/step", {"max_events": 20})
        opcode, payload = _recv_frame(sock)
        tick = json.loads(payload)
        assert tick["type"] == "tick" and tick["events_fired"] == 20

        _send_frame(sock, 0x8, struct.pack("!H", 1000))

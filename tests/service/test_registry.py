"""SessionRegistry: creation, lookup, eviction and the round-robin scheduler."""

import asyncio

import pytest

from repro.scenarios import build_scenario
from repro.service import (
    SessionRegistry,
    SessionState,
    UnknownSessionError,
)

DURATION = 6.0


def _solo_report(seed):
    return build_scenario("urban-grid", n=4, seed=seed).run(DURATION).as_dict()


# --------------------------------------------------------------------- CRUD


def test_create_by_name_assigns_sequential_ids():
    registry = SessionRegistry()
    first = registry.create("urban-grid", n=4, seed=0, duration=DURATION)
    second = registry.create("urban-grid", n=4, seed=1, duration=DURATION)
    assert [first.id, second.id] == ["s0001", "s0002"]
    assert len(registry) == 2
    assert first.id in registry
    assert registry.get(first.id) is first
    assert registry.sessions() == [first, second]


def test_create_validates_exactly_one_source():
    registry = SessionRegistry()
    with pytest.raises(ValueError, match="exactly one"):
        registry.create()
    scenario = build_scenario("urban-grid", n=4, seed=0)
    with pytest.raises(ValueError, match="exactly one"):
        registry.create("urban-grid", scenario=scenario)


def test_create_rejects_duplicate_explicit_id():
    registry = SessionRegistry()
    registry.create("urban-grid", n=4, seed=0, session_id="mine")
    with pytest.raises(ValueError, match="already exists"):
        registry.create("urban-grid", n=4, seed=0, session_id="mine")


def test_unknown_session_is_loud():
    registry = SessionRegistry()
    with pytest.raises(UnknownSessionError):
        registry.get("nope")
    with pytest.raises(UnknownSessionError):
        registry.delete("nope")


def test_delete_forgets_the_session():
    registry = SessionRegistry()
    session = registry.create("urban-grid", n=4, seed=0)
    registry.delete(session.id)
    assert len(registry) == 0
    with pytest.raises(UnknownSessionError):
        registry.get(session.id)


def test_knobs_forwarded_to_builder():
    registry = SessionRegistry()
    session = registry.create(
        "urban-grid", n=4, seed=0, knobs={"malicious_fraction": 0.25}
    )
    assert session.scenario.config.malicious_fraction == 0.25


# ----------------------------------------------------------- evict / restore


def test_registry_evict_auto_pauses_and_writes_artifact(tmp_path):
    registry = SessionRegistry(snapshot_dir=str(tmp_path))
    session = registry.create("urban-grid", n=4, seed=3, duration=DURATION)
    session.start()
    session.step(60)
    registry.evict(session.id)  # running -> paused -> evicted
    assert session.state is SessionState.EVICTED
    assert (tmp_path / f"{session.id}.reprosnap").exists()
    registry.restore(session.id)
    assert session.state is SessionState.PAUSED
    session.resume()
    registry.drive_to_completion()
    assert session.report.as_dict() == _solo_report(3)


# ---------------------------------------------------------------- scheduler


def test_tick_steps_each_runnable_session_once():
    async def scenario():
        registry = SessionRegistry(step_slice=50)
        running = registry.create("urban-grid", n=4, seed=0, duration=DURATION)
        paused = registry.create("urban-grid", n=4, seed=1, duration=DURATION)
        idle = registry.create("urban-grid", n=4, seed=2, duration=DURATION)
        running.start()
        paused.start()
        paused.pause()
        stepped = await registry.tick()
        assert stepped == 1
        assert running.ticks == 1
        assert paused.ticks == 0
        assert idle.ticks == 0

    asyncio.run(scenario())


def test_drive_until_idle_finishes_all_running_sessions():
    registry = SessionRegistry(step_slice=80)
    sessions = [
        registry.create("urban-grid", n=4, seed=seed, duration=DURATION)
        for seed in (0, 1, 2)
    ]
    for session in sessions:
        session.start()
    registry.drive_to_completion()
    for seed, session in enumerate(sessions):
        assert session.state is SessionState.FINISHED
        assert session.report.as_dict() == _solo_report(seed)


def test_interleaved_sessions_are_byte_identical_to_solo_runs():
    """Round-robin interleaving is invisible in the simulation's outputs."""
    registry = SessionRegistry(step_slice=33)
    one = registry.create("urban-grid", n=4, seed=10, duration=DURATION)
    two = registry.create("urban-grid", n=4, seed=11, duration=DURATION)
    one.start()
    two.start()
    registry.drive_to_completion()
    assert one.ticks > 1 and two.ticks > 1  # genuinely interleaved
    assert one.report.as_dict() == _solo_report(10)
    assert two.report.as_dict() == _solo_report(11)


def test_background_drive_stops_on_request():
    async def scenario():
        registry = SessionRegistry(step_slice=50)
        session = registry.create("urban-grid", n=4, seed=0, duration=DURATION)
        session.start()
        driver = asyncio.get_running_loop().create_task(
            registry.drive(idle_sleep=0.001)
        )
        while session.state is SessionState.RUNNING:
            await asyncio.sleep(0.01)
        assert session.state is SessionState.FINISHED
        registry.stop_driving()
        await asyncio.wait_for(driver, 2.0)

    asyncio.run(scenario())

# -------------------------------------------------------------- failure path


def test_step_failure_quarantines_session_and_spares_the_rest():
    registry = SessionRegistry(step_slice=200)
    bad = registry.create("urban-grid", n=4, seed=1, duration=DURATION)
    good = registry.create("urban-grid", n=4, seed=2, duration=DURATION)
    bad.start()
    good.start()

    def exploding_advance(max_events=None):
        raise RuntimeError("scenario wedged")

    bad.scenario.advance = exploding_advance
    registry.drive_to_completion()

    assert bad.state is SessionState.FAILED
    assert bad.error == "RuntimeError: scenario wedged"
    assert bad.scenario is None
    assert good.state is SessionState.FINISHED
    # The failed session is terminal: the scheduler never picks it up again.
    assert bad not in registry.runnable()
    # ...and an interleaved run next to a failing neighbour is still
    # byte-identical to a solo run of the same scenario.
    assert good.report.as_dict() == _solo_report(2)


def test_failed_session_can_still_be_deleted():
    registry = SessionRegistry()
    session = registry.create("urban-grid", n=4, seed=3, duration=DURATION)
    session.start()
    session.fail("operator gave up")
    registry.delete(session.id)
    assert session.id not in registry

"""Shared fixtures for the AirDnD test suite."""

from __future__ import annotations

import pytest

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.api import AirDnDConfig, AirDnDNode
from repro.geometry.vector import Vec2
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def registry() -> FunctionRegistry:
    """A catalogue with one trivial function ('noop': returns 42)."""
    reg = FunctionRegistry()
    reg.register(
        FunctionDefinition(
            name="noop",
            body=lambda params, pond: 42,
            cost_model=lambda params: 1e7,
            memory_mb=16.0,
            result_size_bytes=200,
        )
    )
    return reg


@pytest.fixture
def environment(sim) -> RadioEnvironment:
    """A radio environment with default link budget and no obstacles."""
    return RadioEnvironment(sim, LinkBudget())


def make_static_airdnd_nodes(sim, environment, registry, positions, config=None):
    """Create one AirDnD node per position, attached to static mobiles."""
    nodes = []
    for index, (x, y) in enumerate(positions):
        mobile = StaticNode(sim, Vec2(float(x), float(y)), name=f"node-{index}")
        nodes.append(
            AirDnDNode(sim, environment, mobile, registry, config=config or AirDnDConfig())
        )
    return nodes


@pytest.fixture
def two_nodes(sim, environment, registry):
    """Two static AirDnD nodes 50 m apart with beacons already exchanged."""
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    sim.run(until=2.0)
    return nodes

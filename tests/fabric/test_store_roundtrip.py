"""Store lifecycle, submission, worker loop and artifact round trips.

Everything here runs in-process with a fake ``run_cell`` — the fabric's
moving parts without any simulation cost.  The full-stack byte-identity
and crash story is benchmark E18's job.
"""

import json
import math

import pytest

from repro.experiments.runner import SweepGrid
from repro.fabric import (
    CellSpec,
    FabricWorker,
    JobStore,
    StoreIncompleteError,
    artifact_dir_for,
    grid_cells,
    metrics_sha256,
    read_cell_artifact,
    submit_grid,
    write_cell_artifact,
)
from repro.fabric.store import StoreFormatError


def _cells(n=2):
    return [
        CellSpec(index=i, repetition=0, name=f"p{i}", params={"n": i}, seed=i)
        for i in range(n)
    ]


# ---------------------------------------------------------------- store file


def test_create_refuses_existing_file(tmp_path):
    path = str(tmp_path / "store.db")
    JobStore.create(path, _cells()).close()
    with pytest.raises(FileExistsError):
        JobStore.create(path, _cells())


def test_open_rejects_missing_and_foreign_files(tmp_path):
    with pytest.raises(FileNotFoundError):
        JobStore(str(tmp_path / "absent.db"))
    foreign = tmp_path / "foreign.db"
    foreign.write_text("not a database")
    with pytest.raises(StoreFormatError):
        JobStore(str(foreign))


def test_create_validates_inputs(tmp_path):
    with pytest.raises(ValueError, match="at least one cell"):
        JobStore.create(str(tmp_path / "a.db"), [])
    dupes = [_cells(1)[0], _cells(1)[0]]
    with pytest.raises(ValueError, match="duplicate"):
        JobStore.create(str(tmp_path / "b.db"), dupes)
    with pytest.raises(ValueError, match="lease_ttl"):
        JobStore.create(str(tmp_path / "c.db"), _cells(), lease_ttl=0)


def test_preload_done_only_touches_untouched_pending_cells(tmp_path):
    with JobStore.create(str(tmp_path / "store.db"), _cells(2)) as store:
        assert store.preload_done(0, 0, {"metric": 1.0}) is True
        assert store.preload_done(0, 0, {"metric": 9.0}) is False  # already done
        lease = store.claim("w")
        assert store.preload_done(lease.index, lease.repetition, {}) is False
        (done, leased) = store.cells()
        assert done["state"] == "done" and done["metrics"] == {"metric": 1.0}
        assert leased["state"] == "leased"


def test_requeue_drains_failure_states_not_done(tmp_path):
    with JobStore.create(
        str(tmp_path / "store.db"), _cells(3), max_attempts=1
    ) as store:
        store.complete(store.claim("w"), {"m": 1.0})
        store.fail(store.claim("w"), "poison")  # max_attempts=1 → quarantined
        assert store.counts()["quarantined"] == 1
        assert store.requeue(("failed", "quarantined")) == 1
        counts = store.counts()
        assert counts["pending"] == 2 and counts["done"] == 1
        with pytest.raises(ValueError):
            store.requeue(("done",))


# ---------------------------------------------------------------- submission


def test_grid_cells_follow_the_flat_index_seed_convention():
    grid = SweepGrid({"n": [4, 8], "rate": [1.0]})
    cells = grid_cells(
        grid, scenario="demo", repetitions=2, base_seed=1000, seed_stride=50
    )
    assert [c.seed for c in cells] == [1000, 1001, 1050, 1051]
    assert cells[2].params == {"n": 8, "rate": 1.0}
    assert cells[2].name.startswith("demo:")
    with pytest.raises(ValueError, match="seed_stride"):
        grid_cells(grid, scenario="demo", repetitions=51, base_seed=0, seed_stride=50)


def test_submit_records_sequential_export_metadata(tmp_path):
    grid = SweepGrid({"n": [4, 8]})
    with submit_grid(
        str(tmp_path / "store.db"), "demo", grid, duration=5.0, repetitions=1
    ) as store:
        meta = store.metadata
        # Exact key order: replayed verbatim into the JSON export's "sweep"
        # object, so it must match the sequential CLI's kwargs order.
        assert list(meta)[:6] == [
            "scenario", "grid", "duration", "repetitions", "base_seed", "jobs"
        ]
        assert meta["jobs"] == 1 and meta["grid"] == {"n": [4, 8]}


# -------------------------------------------------------------------- worker


def fake_run_cell(params, seed):
    if params.get("n") == 13:
        raise RuntimeError("unlucky cell")
    return {"metric": float(seed), "latency": math.nan}


def test_worker_drains_store_and_writes_artifacts(tmp_path):
    path = str(tmp_path / "store.db")
    grid = SweepGrid({"n": [4, 8]})
    submit_grid(path, "demo", grid, repetitions=2).close()
    worker = FabricWorker(path, worker_id="w1", run_cell=fake_run_cell)
    assert worker.run() == 4
    with JobStore(path) as store:
        assert store.is_complete()
        for cell in store.cells():
            doc = read_cell_artifact(cell["artifact"])
            assert doc["seed"] == cell["seed"]
            assert doc["metrics"]["metric"] == float(cell["seed"])
            assert math.isnan(doc["metrics"]["latency"])  # NaN round-trips


def test_worker_retries_then_quarantines_poison_cells(tmp_path):
    path = str(tmp_path / "store.db")
    grid = SweepGrid({"n": [4, 13]})
    submit_grid(
        path, "demo", grid, repetitions=1, max_attempts=3,
        backoff_base=0.01, backoff_cap=0.02,
    ).close()
    worker = FabricWorker(path, worker_id="w1", run_cell=fake_run_cell, poll_interval=0.01)
    assert worker.run() == 1
    assert worker.failed == 3  # three attempts at the poison cell
    with JobStore(path) as store:
        counts = store.counts()
        assert counts["done"] == 1 and counts["quarantined"] == 1
        status = store.status()
        assert status["quarantined"][0]["error"] == "RuntimeError: unlucky cell"


def test_incomplete_store_refuses_strict_export(tmp_path):
    path = str(tmp_path / "store.db")
    submit_grid(path, "demo", SweepGrid({"n": [4, 8]}), repetitions=1).close()
    with JobStore(path) as store:
        store.complete(store.claim("w"), {"m": 1.0})
        from repro.fabric import export_store, store_results

        with pytest.raises(StoreIncompleteError, match="1 pending"):
            export_store(store, [str(tmp_path / "out.json")])
        partial = store_results(store, partial=True)
        assert len(partial) == 1


# ----------------------------------------------------------------- artifacts


def test_artifact_write_is_atomic_and_hash_verified(tmp_path):
    from repro.fabric.store import Lease

    lease = Lease(
        index=3, repetition=1, name="demo:n=4", params={"n": 4},
        seed=1003, worker="w", deadline=0.0, attempt=1,
    )
    directory = artifact_dir_for(str(tmp_path / "store.db"))
    path = write_cell_artifact(directory, lease, {"metric": 2.5})
    assert path.endswith("cell-00003-r1.json")
    assert not [p for p in __import__("os").listdir(directory) if p.endswith(".tmp")]
    doc = read_cell_artifact(path)
    assert doc["metrics_sha256"] == metrics_sha256({"metric": 2.5})
    # Tamper: the hash check must catch it.
    raw = json.loads(open(path).read())
    raw["metrics"]["metric"] = 9.9
    with open(path, "w") as handle:
        json.dump(raw, handle)
    with pytest.raises(ValueError, match="corrupt"):
        read_cell_artifact(path)

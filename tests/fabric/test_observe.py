"""Tests for the store's single shared observation accessor.

``JobStore.observe()`` feeds both ``repro fabric status --json`` and every
Prometheus surface (``--prometheus``, the worker sidecar), so these tests
pin its semantics — retry accounting, heartbeat ages, expired leases — and
that ``status()`` is derived from it rather than re-queried.
"""

import pytest

from repro.fabric import CellSpec, JobStore
from repro.telemetry.prometheus import job_store_exposition

from tests.telemetry.test_check_metrics import check_exposition


def _cells(n):
    return [
        CellSpec(index=i, repetition=0, name=f"p{i}", params={"n": i}, seed=i)
        for i in range(n)
    ]


class ManualClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def store(tmp_path):
    clock = ManualClock()
    with JobStore.create(
        str(tmp_path / "store.db"), _cells(4), lease_ttl=30.0, clock=clock
    ) as job_store:
        yield job_store, clock


def test_observe_pristine_store(store):
    job_store, clock = store
    observation = job_store.observe()
    assert observation["now"] == clock.now
    assert observation["cells"] == 4
    assert observation["states"]["pending"] == 4
    assert observation["attempts_total"] == 0
    assert observation["retries_total"] == 0
    assert observation["attempt_histogram"] == {}
    assert observation["lease_expired"] == 0
    assert observation["workers"] == []


def test_observe_counts_retries_and_heartbeat_ages(store):
    job_store, clock = store
    first = job_store.claim("w1")
    job_store.fail(first, "boom")  # attempt 1 of that cell failed
    job_store.requeue()
    retried = job_store.claim("w1")  # same cell again: attempt 2
    clock.now += 10.0
    job_store.claim("w2")
    observation = job_store.observe()
    # 3 acquisitions total; one beyond a cell's first.
    assert observation["attempts_total"] == 3
    assert observation["retries_total"] == 1
    assert observation["attempt_histogram"] == {1: 1, 2: 1}
    workers = {w["worker"]: w for w in observation["workers"]}
    assert set(workers) == {"w1", "w2"}
    assert workers["w1"]["leased"] == 1
    assert workers["w1"]["last_heartbeat_age_s"] == pytest.approx(10.0)
    assert workers["w2"]["last_heartbeat_age_s"] == pytest.approx(0.0)
    assert workers["w2"]["next_deadline_s"] == pytest.approx(30.0)
    job_store.complete(retried, {"m": 1.0})


def test_observe_flags_expired_leases(store):
    job_store, clock = store
    job_store.claim("w1")
    assert job_store.observe()["lease_expired"] == 0
    clock.now += 31.0  # past the 30 s lease ttl
    observation = job_store.observe()
    assert observation["lease_expired"] == 1
    # Still counted as leased until someone reclaims it.
    assert observation["states"]["leased"] == 1


def test_status_carries_the_observation(store):
    job_store, clock = store
    lease = job_store.claim("w1")
    job_store.fail(lease, "boom")
    job_store.requeue()
    job_store.claim("w2")
    status = job_store.status()
    observation = job_store.observe()
    assert status["retries"] == observation["retries_total"]
    assert status["lease_expired"] == observation["lease_expired"]
    assert status["workers"] == observation["workers"]
    # JSON-ready: histogram keys are strings in status, ints in observe.
    assert status["attempt_histogram"] == {
        str(k): v for k, v in observation["attempt_histogram"].items()
    }


def test_observation_renders_as_valid_exposition(store):
    job_store, clock = store
    job_store.complete(job_store.claim("w1"), {"m": 1.0})
    job_store.claim("w1")
    clock.now += 5.0
    text = job_store_exposition(job_store.observe())
    assert check_exposition(text) == []
    assert 'repro_fabric_cells{state="done"} 1' in text
    assert 'repro_fabric_worker_heartbeat_age_seconds{worker_id="w1"} 5' in text
    assert "repro_fabric_cell_attempts_bucket" in text

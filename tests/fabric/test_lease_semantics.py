"""Lease-semantics properties of the fabric job store.

The three contracts the chaos benchmark leans on, tested directly with an
injectable clock (no sleeping, no real workers):

* two workers never hold the same cell at once;
* an expired lease is re-claimable exactly once per expiry;
* the retry backoff is a pure function of ``(seed, attempt)``.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import CellSpec, JobStore, retry_backoff
from repro.fabric.store import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_CAP,
    DEFAULT_JITTER_FRACTION,
)


class FakeClock:
    """A manually advanced wall clock shared by every store handle."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_store(tmp_path, clock, *, cells=3, reps=1, **kwargs):
    specs = [
        CellSpec(index=i, repetition=r, name=f"p{i}", params={"n": i}, seed=100 + i)
        for i in range(cells)
        for r in range(reps)
    ]
    kwargs.setdefault("lease_ttl", 10.0)
    kwargs.setdefault("backoff_base", 1.0)
    kwargs.setdefault("jitter_fraction", 0.0)
    return JobStore.create(
        str(tmp_path / "store.db"), specs, clock=clock, **kwargs
    )


# ------------------------------------------------------------ no double lease


def test_two_workers_never_hold_the_same_cell(tmp_path):
    clock = FakeClock()
    with make_store(tmp_path, clock, cells=4) as store:
        held = set()
        for worker in itertools.cycle(("alpha", "beta")):
            lease = store.claim(worker)
            if lease is None:
                break
            key = (lease.index, lease.repetition)
            assert key not in held, "cell leased twice without an expiry"
            held.add(key)
        assert len(held) == 4
        assert store.counts()["leased"] == 4


def test_interleaved_claims_through_separate_connections(tmp_path):
    # Two store handles (as two processes would have) racing over one cell:
    # exactly one wins, the loser sees nothing claimable.
    clock = FakeClock()
    store_a = make_store(tmp_path, clock, cells=1)
    store_b = JobStore(store_a.path, clock=clock)
    try:
        lease_a = store_a.claim("alpha")
        lease_b = store_b.claim("beta")
        assert lease_a is not None
        assert lease_b is None
    finally:
        store_a.close()
        store_b.close()


def test_completion_requires_holding_the_lease(tmp_path):
    clock = FakeClock()
    with make_store(tmp_path, clock, cells=1, lease_ttl=5.0) as store:
        stale = store.claim("alpha")
        clock.advance(6.0)  # alpha's lease expires...
        fresh = store.claim("beta")  # ...and beta reclaims the cell
        assert fresh is not None and fresh.worker == "beta"
        # alpha's writes are all rejected: the lease is no longer theirs.
        assert store.heartbeat(stale) is False
        assert store.complete(stale, {"metric": 1.0}) is False
        assert store.fail(stale, "late failure") is None
        assert store.release(stale) is False
        # beta's completion is the one that lands.
        assert store.complete(fresh, {"metric": 2.0}) is True
        (cell,) = store.cells()
        assert cell["state"] == "done" and cell["metrics"] == {"metric": 2.0}


# ------------------------------------------- expired lease reclaimed once


def test_expired_lease_reclaimable_exactly_once_per_expiry(tmp_path):
    clock = FakeClock()
    with make_store(tmp_path, clock, cells=1, lease_ttl=5.0) as store:
        first = store.claim("alpha")
        assert first is not None and first.attempt == 1
        clock.advance(5.1)
        second = store.claim("beta")
        assert second is not None and second.attempt == 2
        # Same instant, third worker: the cell is freshly leased again, so
        # there is nothing to claim — one reclaim per expiry.
        assert store.claim("gamma") is None
        clock.advance(5.1)
        third = store.claim("gamma")
        assert third is not None and third.attempt == 3


def test_heartbeat_extends_the_deadline(tmp_path):
    clock = FakeClock()
    with make_store(tmp_path, clock, cells=1, lease_ttl=5.0) as store:
        lease = store.claim("alpha")
        clock.advance(4.0)
        assert store.heartbeat(lease) is True
        clock.advance(4.0)  # 8s since claim, but only 4s since renewal
        assert store.claim("beta") is None
        assert store.heartbeat(lease) is True


def test_expiries_eventually_quarantine_a_crashing_cell(tmp_path):
    clock = FakeClock()
    with make_store(tmp_path, clock, cells=1, lease_ttl=5.0, max_attempts=3) as store:
        for attempt in (1, 2, 3):
            lease = store.claim(f"victim-{attempt}")
            assert lease is not None and lease.attempt == attempt
            clock.advance(5.1)  # worker "crashes" every time
        # Attempt budget is spent; the next claim parks the cell instead.
        assert store.claim("late") is None
        assert store.counts()["quarantined"] == 1


def test_release_refunds_the_attempt(tmp_path):
    clock = FakeClock()
    with make_store(tmp_path, clock, cells=1) as store:
        lease = store.claim("alpha")
        assert lease.attempt == 1
        assert store.release(lease) is True
        again = store.claim("beta")
        assert again is not None and again.attempt == 1


def test_failed_cell_respects_backoff_window(tmp_path):
    clock = FakeClock()
    with make_store(tmp_path, clock, cells=1, backoff_base=2.0) as store:
        lease = store.claim("alpha")
        assert store.fail(lease, "transient") == "failed"
        # not_before = now + backoff(seed, 1) = now + 2.0 (jitter off).
        assert store.claim("alpha") is None
        clock.advance(1.9)
        assert store.claim("alpha") is None
        clock.advance(0.2)
        retry = store.claim("alpha")
        assert retry is not None and retry.attempt == 2


# --------------------------------------------------- backoff is pure(seed,·)


@settings(max_examples=200, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**62),
    attempt=st.integers(min_value=1, max_value=64),
)
def test_backoff_is_pure_and_bounded(seed, attempt):
    first = retry_backoff(seed, attempt)
    assert first == retry_backoff(seed, attempt)  # pure: no hidden state
    exponential = min(
        DEFAULT_BACKOFF_BASE * 2.0 ** (attempt - 1), DEFAULT_BACKOFF_CAP
    )
    assert exponential <= first < exponential * (1.0 + DEFAULT_JITTER_FRACTION)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**62))
def test_backoff_is_monotone_in_attempt_without_jitter(seed):
    delays = [
        retry_backoff(seed, attempt, jitter_fraction=0.0)
        for attempt in range(1, 12)
    ]
    assert delays == sorted(delays)
    assert delays[-1] == DEFAULT_BACKOFF_CAP


def test_backoff_jitter_decorrelates_neighbouring_seeds():
    # Adjacent cells (seed, seed+1) should not retry in lockstep.
    delays = {retry_backoff(seed, 3) for seed in range(100, 110)}
    assert len(delays) == 10


def test_backoff_rejects_bad_arguments():
    with pytest.raises(ValueError):
        retry_backoff(0, 0)
    with pytest.raises(ValueError):
        retry_backoff(0, 1, base=0.0)
    with pytest.raises(ValueError):
        retry_backoff(0, 1, jitter_fraction=1.0)

"""Tests for the cellular network and cloud endpoint."""

import pytest

from repro.radio.cellular import CellularNetwork, CloudEndpoint
from repro.simcore.simulator import Simulator


def test_uplink_and_downlink_times_include_core_latency():
    sim = Simulator()
    cellular = CellularNetwork(sim, uplink_bps=10e6, downlink_bps=20e6, core_latency=0.03)
    assert cellular.uplink_time(0) == pytest.approx(0.03)
    assert cellular.uplink_time(1_250_000) == pytest.approx(0.03 + 1.0)
    assert cellular.downlink_time(2_500_000) == pytest.approx(0.03 + 1.0)


def test_upload_completes_after_transfer_time():
    sim = Simulator()
    cellular = CellularNetwork(sim, uplink_bps=8e6, core_latency=0.0)
    done = []
    cellular.upload(1_000_000, lambda: done.append(sim.now))
    sim.run(until=0.5)
    assert done == []
    sim.run(until=2.0)
    assert done == [pytest.approx(1.0)]
    assert cellular.bytes_uplinked == 1_000_000
    assert cellular.total_bytes() == 1_000_000


def test_download_counted_separately():
    sim = Simulator()
    cellular = CellularNetwork(sim)
    cellular.download(5000, lambda: None)
    sim.run(until=1.0)
    assert cellular.bytes_downlinked == 5000
    assert sim.monitor.counter_value("cellular.bytes_downlinked") == 5000


def test_cloud_execution_duration():
    sim = Simulator()
    cloud = CloudEndpoint(compute_rate_ops=1e9)
    cellular = CellularNetwork(sim, cloud=cloud)
    finished = []
    cellular.execute_in_cloud(2e9, lambda: finished.append(sim.now))
    sim.run(until=1.0)
    assert finished == []
    sim.run(until=3.0)
    assert finished == [pytest.approx(2.0)]


def test_cloud_capacity_queues_tasks():
    sim = Simulator()
    cloud = CloudEndpoint(compute_rate_ops=1e9, shared_capacity=1)
    cellular = CellularNetwork(sim, cloud=cloud)
    finished = []
    cellular.execute_in_cloud(1e9, lambda: finished.append("first"))
    cellular.execute_in_cloud(1e9, lambda: finished.append("second"))
    sim.run(until=1.5)
    assert finished == ["first"]
    sim.run(until=2.5)
    assert finished == ["first", "second"]

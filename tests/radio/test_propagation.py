"""Tests for path-loss models."""

import pytest

from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2
from repro.radio.propagation import FreeSpacePathLoss, LogDistancePathLoss


def test_free_space_loss_grows_with_distance():
    model = FreeSpacePathLoss()
    near = model.path_loss_db(Vec2(0, 0), Vec2(10, 0))
    far = model.path_loss_db(Vec2(0, 0), Vec2(100, 0))
    assert far > near
    # Free space: +20 dB per decade of distance.
    assert far - near == pytest.approx(20.0, abs=0.1)


def test_free_space_clamps_tiny_distance():
    model = FreeSpacePathLoss()
    assert model.path_loss_db(Vec2(0, 0), Vec2(0.01, 0)) == model.path_loss_db(
        Vec2(0, 0), Vec2(1.0, 0)
    )


def test_log_distance_exponent_controls_slope():
    gentle = LogDistancePathLoss(exponent=2.0)
    steep = LogDistancePathLoss(exponent=4.0)
    a, b = Vec2(0, 0), Vec2(200, 0)
    assert steep.path_loss_db(a, b) > gentle.path_loss_db(a, b)


def test_log_distance_matches_free_space_at_reference():
    model = LogDistancePathLoss(exponent=2.75, reference_distance=1.0)
    free = FreeSpacePathLoss()
    at_reference = model.path_loss_db(Vec2(0, 0), Vec2(1.0, 0))
    assert at_reference == pytest.approx(free.path_loss_db(Vec2(0, 0), Vec2(1.0, 0)), abs=0.01)


def test_nlos_penalty_applied_when_occluded():
    model = LogDistancePathLoss(nlos_penalty_db=15.0)
    visibility = VisibilityMap([Rectangle(40, -10, 60, 10)])
    a, b = Vec2(0, 0), Vec2(100, 0)
    los = model.path_loss_db(a, b, None)
    nlos = model.path_loss_db(a, b, visibility)
    assert nlos == pytest.approx(los + 15.0)


def test_invalid_parameters_raise():
    with pytest.raises(ValueError):
        FreeSpacePathLoss(frequency_hz=0)
    with pytest.raises(ValueError):
        LogDistancePathLoss(exponent=0)
    with pytest.raises(ValueError):
        LogDistancePathLoss(reference_distance=0)

"""Unit tests for the statistical (``fast_math``) equivalence tier.

The aggregate contract lives in
``tests/properties/test_property_statistical_equivalence.py`` and the
speedup gate in benchmark E15; these tests pin the tier's pieces one by
one — knob validation, kernel agreement with the scalar reference, the
environment's fast broadcast path, and the cache-flush triggers.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator

#: The SIMD kernels and scalar libm differ in the last ulp; anything beyond
#: this tolerance is a real divergence, not rounding.
REL_TOL = 1e-9


# ------------------------------------------------------- knob validation


def test_fast_math_must_be_a_bool():
    with pytest.raises(ValueError, match="fast_math"):
        LinkBudget(fast_math=1)
    with pytest.raises(ValueError, match="fast_math"):
        LinkBudget(fast_math="true")
    assert LinkBudget(fast_math=True).fast_math is True
    assert LinkBudget().fast_math is False


# --------------------------------------------------- kernel equivalence


def lattice(count: int, step: float = 37.0) -> list:
    side = max(1, math.ceil(math.sqrt(count)))
    return [
        Vec2((index % side) * step, (index // side) * step)
        for index in range(count)
    ]


def assert_quality_close(fast, exact):
    assert fast.usable == exact.usable
    assert fast.snr_db == pytest.approx(exact.snr_db, rel=REL_TOL)
    assert fast.rate_bps == pytest.approx(exact.rate_bps, rel=REL_TOL)
    assert fast.packet_error_rate == pytest.approx(
        exact.packet_error_rate, rel=REL_TOL
    )
    assert fast.distance == pytest.approx(exact.distance, rel=REL_TOL)


def test_quality_arrays_matches_scalar_reference():
    exact = LinkBudget()
    fast = LinkBudget(fast_math=True)
    tx = Vec2(5.0, -3.0)
    rxs = lattice(30)
    snrs, rates, pers, usable, distances = fast.quality_arrays(tx, rxs)
    assert usable.dtype == np.dtype(bool)
    assert snrs.dtype == np.dtype(np.float64)
    for index, rx in enumerate(rxs):
        reference = exact.quality(tx, rx)
        assert bool(usable[index]) == reference.usable
        assert snrs[index] == pytest.approx(reference.snr_db, rel=REL_TOL)
        assert rates[index] == pytest.approx(reference.rate_bps, rel=REL_TOL)
        assert pers[index] == pytest.approx(
            reference.packet_error_rate, rel=REL_TOL
        )
        assert distances[index] == pytest.approx(
            reference.distance, rel=REL_TOL
        )


def test_quality_arrays_xy_agrees_with_quality_arrays():
    budget = LinkBudget(fast_math=True)
    tx = Vec2(0.0, 0.0)
    rxs = lattice(17)
    xs = np.array([rx.x for rx in rxs])
    ys = np.array([rx.y for rx in rxs])
    from_vecs = budget.quality_arrays(tx, rxs)
    from_xy = budget.quality_arrays_xy(tx, xs, ys)
    precomputed = budget.quality_arrays_xy(
        tx, xs, ys, distances=np.hypot(xs - tx.x, ys - tx.y)
    )
    for column_a, column_b, column_c in zip(from_vecs, from_xy, precomputed):
        np.testing.assert_array_equal(column_a, column_b)
        np.testing.assert_array_equal(column_a, column_c)


def test_quality_arrays_xy_applies_nlos_penalty():
    budget = LinkBudget(fast_math=True)
    visibility = VisibilityMap([Rectangle(40.0, -10.0, 60.0, 10.0)])
    tx = Vec2(0.0, 0.0)
    occluded = Vec2(100.0, 0.0)
    clear = Vec2(100.0, 80.0)
    xs = np.array([occluded.x, clear.x])
    ys = np.array([occluded.y, clear.y])
    snrs, *_ = budget.quality_arrays_xy(tx, xs, ys, visibility)
    baseline, *_ = budget.quality_arrays_xy(tx, xs, ys)
    assert snrs[0] < baseline[0]  # shadowed by the building
    assert snrs[1] == baseline[1]  # clear ray unaffected


def test_scalar_quality_probe_routes_through_fast_kernel():
    """Single-link probes and bulk rows must agree *within* the fast tier."""
    budget = LinkBudget(fast_math=True)
    tx = Vec2(0.0, 0.0)
    rx = Vec2(80.0, 15.0)
    probe = budget.quality(tx, rx)
    batch = budget.quality_batch(tx, [rx])[0]
    assert probe == batch


# ------------------------------------------------ environment fast path


def build_fleet(fast_math: bool, count: int = 16, seed: int = 9):
    sim = Simulator(seed=seed)
    environment = RadioEnvironment(sim, LinkBudget(fast_math=fast_math))
    received = []
    positions = lattice(count, step=45.0)
    for index, position in enumerate(positions):
        interface = environment.attach(
            f"n-{index:02d}", lambda position=position: position
        )
        interface.on_receive(
            lambda frame, quality, name=f"n-{index:02d}": received.append(
                (sim.now, frame.sender, name, quality.snr_db)
            )
        )
    return sim, environment, received


def test_fast_broadcast_reaches_the_exact_receiver_set():
    logs = {}
    for tier, fast_math in (("exact", False), ("statistical", True)):
        sim, environment, received = build_fleet(fast_math)
        sim.schedule(
            0.1, lambda env=environment: env.interface_of("n-00").send(None, 200)
        )
        sim.run(until=1.0)
        logs[tier] = received
    exact_receivers = [(sender, name) for _, sender, name, _ in logs["exact"]]
    fast_receivers = [
        (sender, name) for _, sender, name, _ in logs["statistical"]
    ]
    assert exact_receivers  # non-vacuous: someone was in range
    assert fast_receivers == exact_receivers
    for exact_row, fast_row in zip(logs["exact"], logs["statistical"]):
        assert fast_row[3] == pytest.approx(exact_row[3], rel=REL_TOL)


def test_fast_unicast_keeps_exact_delivery_semantics():
    """``fast_math`` only reroutes broadcasts; unicast frames keep the exact
    tier's scheduling and receiver bookkeeping (link qualities go through the
    tier's own kernel, so they agree to the ulp, not byte-for-byte)."""
    results = {}
    for tier, fast_math in (("exact", False), ("statistical", True)):
        sim, environment, received = build_fleet(fast_math)
        sim.schedule(
            0.1,
            lambda env=environment: env.interface_of("n-00").send("n-01", 200),
        )
        sim.run(until=1.0)
        results[tier] = received
    exact_rows = results["exact"]
    fast_rows = results["statistical"]
    assert [row[:3] for row in fast_rows] == [row[:3] for row in exact_rows]
    assert "n-01" in [row[2] for row in exact_rows]
    for exact_row, fast_row in zip(exact_rows, fast_rows):
        assert fast_row[3] == pytest.approx(exact_row[3], rel=REL_TOL)


def test_fast_plans_flush_when_positions_change():
    sim = Simulator(seed=3)
    environment = RadioEnvironment(sim, LinkBudget(fast_math=True))
    position = {"rx": Vec2(60.0, 0.0)}
    received = []
    sender = environment.attach("tx", lambda: Vec2(0.0, 0.0))
    receiver = environment.attach("rx", lambda: position["rx"])
    receiver.on_receive(
        lambda frame, quality: received.append((sim.now, quality.distance))
    )

    sim.schedule(0.1, lambda: sender.send(None, 200))

    def move_out_of_range() -> None:
        position["rx"] = Vec2(10_000.0, 0.0)
        environment.notify_positions_changed()

    sim.schedule(0.2, move_out_of_range)
    sim.schedule(0.3, lambda: sender.send(None, 200))
    sim.run(until=1.0)
    # One delivery at 60 m, then none: the cached plan from the first
    # broadcast must not survive the position change.
    assert len(received) == 1
    assert received[0][1] == pytest.approx(60.0)

"""Tests for the radio environment and interfaces."""

import pytest

from repro.geometry.vector import Vec2
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def make_env(positions, **kwargs):
    sim = Simulator(seed=1)
    env = RadioEnvironment(sim, LinkBudget(), **kwargs)
    interfaces = {}
    for name, pos in positions.items():
        interfaces[name] = env.attach(name, lambda p=pos: p)
    return sim, env, interfaces


def test_unicast_delivery_in_range():
    sim, env, ifaces = make_env({"a": Vec2(0, 0), "b": Vec2(50, 0)})
    received = []
    ifaces["b"].on_receive(lambda frame, quality: received.append(frame.payload))
    ifaces["a"].send("hello", size_bytes=100, destination="b")
    sim.run(until=1.0)
    assert received == ["hello"]
    assert ifaces["a"].bytes_sent == 100
    assert ifaces["b"].bytes_received == 100


def test_broadcast_reaches_all_in_range_only():
    sim, env, ifaces = make_env(
        {"a": Vec2(0, 0), "near": Vec2(40, 0), "far": Vec2(5000, 0)}
    )
    got = {"near": [], "far": []}
    ifaces["near"].on_receive(lambda f, q: got["near"].append(f.payload))
    ifaces["far"].on_receive(lambda f, q: got["far"].append(f.payload))
    ifaces["a"].send("ping", size_bytes=50, destination=None)
    sim.run(until=1.0)
    assert got["near"] == ["ping"]
    assert got["far"] == []
    assert sim.monitor.counter_value("radio.frames_out_of_range") >= 1


def test_delivery_has_positive_latency_scaling_with_size():
    sim, env, ifaces = make_env({"a": Vec2(0, 0), "b": Vec2(50, 0)})
    times = []
    ifaces["b"].on_receive(lambda f, q: times.append(sim.now))
    ifaces["a"].send("small", size_bytes=100, destination="b")
    ifaces["a"].send("large", size_bytes=1_000_000, destination="b")
    sim.run(until=10.0)
    assert len(times) == 2
    small_time, large_time = times[0], times[1]
    assert small_time > 0.0
    assert large_time > small_time


def test_disabled_interface_neither_sends_nor_receives():
    sim, env, ifaces = make_env({"a": Vec2(0, 0), "b": Vec2(30, 0)})
    received = []
    ifaces["b"].on_receive(lambda f, q: received.append(f))
    ifaces["b"].enabled = False
    ifaces["a"].send("x", 10, destination="b")
    sim.run(until=1.0)
    assert received == []
    ifaces["a"].enabled = False
    before = ifaces["a"].bytes_sent
    ifaces["a"].send("y", 10, destination="b")
    assert ifaces["a"].bytes_sent == before


def test_nodes_in_range_and_link_quality():
    sim, env, ifaces = make_env({"a": Vec2(0, 0), "b": Vec2(60, 0), "c": Vec2(4000, 0)})
    assert set(env.nodes_in_range("a")) == {"b"}
    assert env.link_quality("a", "b").usable
    assert not env.link_quality("a", "c").usable


def test_duplicate_attach_rejected_and_detach():
    sim, env, ifaces = make_env({"a": Vec2(0, 0)})
    with pytest.raises(ValueError):
        env.attach("a", lambda: Vec2(0, 0))
    env.detach("a")
    assert env.node_names == []


def test_unbound_environment_tracks_manually_moved_nodes():
    # Without a bound MobilityManager the environment falls back to
    # resyncing its spatial mirror whenever the clock advances, so position
    # changes between events are still observed.
    sim = Simulator(seed=3)
    env = RadioEnvironment(sim, LinkBudget())
    position = {"b": Vec2(5000, 0)}
    env.attach("a", lambda: Vec2(0, 0))
    b = env.attach("b", lambda: position["b"])
    received = []
    b.on_receive(lambda f, q: received.append(f.payload))
    env.interface_of("a").send("one", 50, destination=None)
    sim.run(until=1.0)
    assert received == []  # out of range
    position["b"] = Vec2(50, 0)  # node "moves" into range
    env.interface_of("a").send("two", 50, destination=None)
    sim.run(until=2.0)
    assert received == ["two"]
    assert env.nodes_in_range("a") == ["b"]


def test_manual_move_at_same_timestamp_visible_after_notify_moved():
    # Regression: the unbound environment resyncs per event *time*, so a
    # manual position write at the current timestamp used to be seen one
    # event late.  notify_moved() is the explicit dirty-mark that makes it
    # visible immediately.
    sim = Simulator(seed=3)
    env = RadioEnvironment(sim, LinkBudget())
    position = {"b": Vec2(5000, 0)}
    env.attach("a", lambda: Vec2(0, 0))
    b = env.attach("b", lambda: position["b"])
    assert env.nodes_in_range("a") == []   # primes the per-epoch caches at t=0
    position["b"] = Vec2(50, 0)            # manual move, clock has not advanced
    assert env.nodes_in_range("a") == []   # stale without a dirty-mark (old bug)
    b.notify_moved()
    assert env.nodes_in_range("a") == ["b"]
    assert env.link_quality("a", "b").usable
    received = []
    b.on_receive(lambda f, q: received.append(f.payload))
    env.interface_of("a").send("now", 50, destination=None)
    sim.run(until=1.0)
    assert received == ["now"]


def test_same_timestamp_move_matches_substrate_bound_path():
    # The substrate-bound regime sees a committed same-timestamp move
    # immediately (the substrate's epoch bump is the dirty-mark); after
    # notify_moved() the unbound regime must agree with it.
    from repro.mobility.manager import MobilityManager
    from repro.mobility.waypoints import StaticNode

    def in_range_after_move(bound: bool):
        sim = Simulator(seed=17)
        if bound:
            mobility = MobilityManager(sim, tick=0.1, cell_size=150.0)
            env = RadioEnvironment(sim, LinkBudget(), mobility=mobility)
            mover = StaticNode(sim, Vec2(5000, 0), name="b")
            mobility.add_node(mover)
            env.attach("a", lambda: Vec2(0, 0))
            env.attach("b", lambda: mover.position)
            assert env.nodes_in_range("a") == []
            mover.position = Vec2(50, 0)
            mobility.substrate.update("b", mover.position)
            mobility.substrate.commit()
        else:
            env = RadioEnvironment(sim, LinkBudget())
            position = {"b": Vec2(5000, 0)}
            env.attach("a", lambda: Vec2(0, 0))
            b = env.attach("b", lambda: position["b"])
            assert env.nodes_in_range("a") == []
            position["b"] = Vec2(50, 0)
            b.notify_moved()
        return env.nodes_in_range("a")

    assert in_range_after_move(bound=True) == in_range_after_move(bound=False) == ["b"]


def test_spatial_and_bruteforce_paths_agree():
    positions = {
        "a": Vec2(0, 0),
        "b": Vec2(40, 0),
        "c": Vec2(150, 100),
        "d": Vec2(4000, 0),
        "e": Vec2(260, 10),
    }
    logs = []
    for use_spatial in (True, False):
        sim = Simulator(seed=11)
        env = RadioEnvironment(sim, LinkBudget(), use_spatial_index=use_spatial)
        ifaces = {n: env.attach(n, lambda p=p: p) for n, p in positions.items()}
        log = []
        for name, iface in ifaces.items():
            iface.on_receive(
                lambda f, q, name=name: log.append((sim.now, f.sender, name))
            )
        for _ in range(20):
            ifaces["a"].send("x", 200, destination=None)
            ifaces["e"].send("y", 200, destination=None)
        sim.run(until=5.0)
        log.append(
            tuple(
                sim.monitor.counter_value(c)
                for c in (
                    "radio.frames_delivered",
                    "radio.frames_lost",
                    "radio.frames_out_of_range",
                )
            )
        )
        logs.append(log)
    assert logs[0] == logs[1]


def test_mobility_bound_environment_invalidates_on_tick():
    from repro.mobility.manager import MobilityManager
    from repro.mobility.vehicle import Vehicle

    sim = Simulator(seed=5)
    mobility = MobilityManager(sim, tick=0.1, cell_size=150.0)
    env = RadioEnvironment(sim, LinkBudget(), mobility=mobility)
    # Vehicle drives away from a static node and out of range.
    vehicle = Vehicle(
        sim, [Vec2(0, 0), Vec2(10000, 0)], name="veh", initial_speed=100.0
    )
    mobility.add_node(vehicle)
    env.attach("veh", lambda: vehicle.position)
    env.attach("rsu", lambda: Vec2(0, 0))
    sim.run(until=0.5)
    epoch_mid = env.position_epoch
    assert env.nodes_in_range("rsu") == ["veh"]
    sim.run(until=60.0)
    # Mobility ticks advanced the combined position epoch...
    assert env.position_epoch > epoch_mid
    # ...so the per-epoch caches did not go stale.
    assert env.nodes_in_range("rsu") == []
    assert not env.link_quality("rsu", "veh").usable


def test_substrate_bound_environment_keeps_no_mirror():
    from repro.mobility.manager import MobilityManager
    from repro.mobility.waypoints import StaticNode

    sim = Simulator(seed=9)
    mobility = MobilityManager(sim, tick=0.1, cell_size=150.0)
    env = RadioEnvironment(sim, LinkBudget(), mobility=mobility)
    for index, x in enumerate((0.0, 40.0, 9000.0)):
        node = StaticNode(sim, Vec2(x, 0), name=f"s{index}")
        mobility.add_node(node)
        env.attach(node.name, lambda node=node: node.position)
    received = []
    env.interface_of("s1").on_receive(lambda f, q: received.append(f.payload))
    env.interface_of("s0").send("hi", 50, destination=None)
    sim.run(until=1.0)
    assert received == ["hi"]
    stats = env.spatial_stats()
    assert stats["substrate_shared"] == 1.0
    assert stats["mirror_sync_passes"] == 0.0
    assert stats["mirror_updates"] == 0.0
    assert stats["overlay_nodes"] == 0.0


def test_substrate_bound_environment_still_reaches_overlay_interfaces():
    # An RSU attached to the radio but never registered with the mobility
    # manager lives in the environment's overlay grid, yet is reachable both
    # ways exactly like a substrate-tracked node.
    from repro.mobility.manager import MobilityManager
    from repro.mobility.vehicle import Vehicle

    sim = Simulator(seed=13)
    mobility = MobilityManager(sim, tick=0.1, cell_size=150.0)
    env = RadioEnvironment(sim, LinkBudget(), mobility=mobility)
    vehicle = Vehicle(sim, [Vec2(0, 0), Vec2(10000, 0)], name="veh", initial_speed=50.0)
    mobility.add_node(vehicle)
    env.attach("veh", lambda: vehicle.position)
    env.attach("rsu", lambda: Vec2(30, 0))  # radio-only, no mobility entry
    got = []
    env.interface_of("rsu").on_receive(lambda f, q: got.append(f.payload))
    env.interface_of("veh").send("to-rsu", 50, destination=None)
    sim.run(until=0.5)
    assert got == ["to-rsu"]
    assert "veh" in env.nodes_in_range("rsu")
    assert env.spatial_stats()["overlay_nodes"] == 1.0
    # The vehicle drives away; the overlay node drops out of its range view.
    sim.run(until=60.0)
    assert env.nodes_in_range("rsu") == []


def test_mobility_nodes_without_radio_are_not_candidates():
    # A tracked pedestrian has no radio interface: substrate queries must
    # filter it out rather than crash or deliver to it.
    from repro.mobility.manager import MobilityManager
    from repro.mobility.waypoints import StaticNode

    sim = Simulator(seed=21)
    mobility = MobilityManager(sim, tick=0.1, cell_size=150.0)
    env = RadioEnvironment(sim, LinkBudget(), mobility=mobility)
    for index, x in enumerate((0.0, 50.0)):
        node = StaticNode(sim, Vec2(x, 0), name=f"s{index}")
        mobility.add_node(node)
        env.attach(node.name, lambda node=node: node.position)
    mobility.add_node(StaticNode(sim, Vec2(10, 0), name="pedestrian"))
    env.interface_of("s0").send("hello", 50, destination=None)
    sim.run(until=1.0)
    assert env.nodes_in_range("s0") == ["s1"]
    assert sim.monitor.counter_value("radio.frames_delivered") == 1


def test_broadcast_prunes_far_receivers_but_counts_them():
    sim, env, ifaces = make_env(
        {"a": Vec2(0, 0), "n1": Vec2(30, 0), "f1": Vec2(9000, 0), "f2": Vec2(0, 9000)}
    )
    ifaces["a"].send("ping", 50, destination=None)
    sim.run(until=1.0)
    # Both pruned receivers are accounted exactly as the full scan would.
    assert sim.monitor.counter_value("radio.frames_out_of_range") == 2
    assert sim.monitor.counter_value("radio.frames_delivered") == 1


def test_unbounded_link_budget_disables_unsound_range_pruning():
    # With min_snr_db this low the link is usable far past effective_range's
    # 10 km scan cap, so range pruning could silently drop reachable
    # receivers; the environment must fall back to the full scan.
    sim = Simulator(seed=2)
    env = RadioEnvironment(sim, LinkBudget(min_snr_db=-500.0), use_spatial_index=True)
    assert env.use_spatial_index is False
    env.attach("a", lambda: Vec2(0, 0))
    env.attach("b", lambda: Vec2(20_000, 0))  # beyond the scan cap
    assert env.link_quality("a", "b").usable
    assert env.nodes_in_range("a") == ["b"]
    env.interface_of("a").send("far", 50, destination=None)
    sim.run(until=1.0)
    # The near-zero Shannon rate at 20 km means the frame is still in
    # flight at t=1, but it was *not* pruned: it counts as delivered, not
    # out-of-range.
    assert sim.monitor.counter_value("radio.frames_delivered") == 1
    assert sim.monitor.counter_value("radio.frames_out_of_range") == 0


def test_lossy_link_drops_some_frames():
    # Near the edge of the usable range the PER is substantial; with many
    # frames some must be lost (and some must get through).
    sim, env, ifaces = make_env({"a": Vec2(0, 0), "b": Vec2(265, 0)})
    received = []
    ifaces["b"].on_receive(lambda f, q: received.append(f))
    for _ in range(60):
        ifaces["a"].send("x", 100, destination="b")
    sim.run(until=5.0)
    lost = sim.monitor.counter_value("radio.frames_lost")
    assert lost > 0
    assert len(received) + lost == 60

"""Batched link-pipeline equivalence and behaviour tests.

The contract under test is *bit*-identity, not approximate equality: the
radio environment's reference flag (``use_batched_links=False``) is only
meaningful if the batch kernel reproduces the scalar path exactly, RNG draw
for RNG draw.
"""

import random

from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.radio.propagation import FreeSpacePathLoss, LogDistancePathLoss
from repro.simcore.simulator import Simulator


def quality_tuple(q):
    return (q.snr_db, q.rate_bps, q.packet_error_rate, q.usable, q.distance)


def test_quality_batch_empty_receiver_list():
    assert LinkBudget().quality_batch(Vec2(0, 0), []) == []


def test_quality_batch_bit_identical_to_scalar_quality():
    rng = random.Random(7)
    obstacles = [
        Rectangle(x, y, x + rng.uniform(5, 40), y + rng.uniform(5, 40))
        for x, y in ((rng.uniform(-200, 200), rng.uniform(-200, 200)) for _ in range(15))
    ]
    visibility = VisibilityMap(obstacles)
    for budget in (LinkBudget(), LinkBudget(FreeSpacePathLoss()),
                   LinkBudget(LogDistancePathLoss(exponent=3.2, nlos_penalty_db=20.0))):
        for _ in range(50):
            tx = Vec2(rng.uniform(-300, 300), rng.uniform(-300, 300))
            rxs = [
                Vec2(rng.uniform(-300, 300), rng.uniform(-300, 300))
                for _ in range(rng.randrange(1, 12))
            ]
            for vis in (None, visibility):
                batch = budget.quality_batch(tx, rxs, vis)
                for rx, batched in zip(rxs, batch):
                    scalar = budget.quality(tx, rx, vis)
                    assert quality_tuple(batched) == quality_tuple(scalar)
                    # Plain Python scalars, not numpy types, leave the kernel.
                    assert type(batched.snr_db) is float
                    assert type(batched.usable) is bool


def test_quality_batch_covers_both_snr_branches():
    budget = LinkBudget()
    qualities = budget.quality_batch(Vec2(0, 0), [Vec2(10, 0), Vec2(9000, 0)])
    assert qualities[0].usable and qualities[0].rate_bps > 0
    assert not qualities[1].usable
    assert qualities[1].rate_bps == 0.0 and qualities[1].packet_error_rate == 1.0


def test_path_loss_batch_applies_nlos_penalty_per_receiver():
    visibility = VisibilityMap([Rectangle(40.0, -10.0, 60.0, 10.0)])
    model = LogDistancePathLoss()
    tx = Vec2(0.0, 0.0)
    clear_rx = Vec2(0.0, 100.0)
    blocked_rx = Vec2(100.0, 0.0)
    losses = model.path_loss_db_batch(
        tx,
        [clear_rx, blocked_rx],
        [tx.distance_to(clear_rx), tx.distance_to(blocked_rx)],
        visibility,
    )
    assert losses[0] == model.path_loss_db(tx, clear_rx, visibility)
    assert losses[1] == model.path_loss_db(tx, blocked_rx, visibility)
    assert losses[1] - losses[0] > model.nlos_penalty_db / 2  # penalty landed


# ------------------------------------------------- environment row semantics


def build_env(use_batched_links, n=12, seed=5):
    sim = Simulator(seed=seed)
    env = RadioEnvironment(sim, LinkBudget(), use_batched_links=use_batched_links)
    rng = random.Random(99)
    for index in range(n):
        pos = Vec2(rng.uniform(0, 400), rng.uniform(0, 400))
        env.attach(f"n-{index:02d}", lambda p=pos: p)
    return sim, env


def test_environment_rows_identical_across_batched_flag():
    _, batched = build_env(use_batched_links=True)
    _, reference = build_env(use_batched_links=False)
    names = batched.node_names
    for src in names:
        assert batched.nodes_in_range(src) == reference.nodes_in_range(src)
        for dst in names:
            if dst == src:
                continue
            assert quality_tuple(batched.link_quality(src, dst)) == quality_tuple(
                reference.link_quality(src, dst)
            )


def test_broadcast_delivery_identical_across_batched_flag():
    logs = {}
    for flag in (True, False):
        sim, env = build_env(use_batched_links=flag)
        log = []
        for name in env.node_names:
            env.interface_of(name).on_receive(
                lambda frame, quality, receiver=name: log.append(
                    (sim.now, frame.sender, receiver, quality.snr_db, quality.rate_bps)
                )
            )
        for name in env.node_names:
            env.interface_of(name).send(f"hello-{name}", 200, destination=None)
        sim.run(until=2.0)
        assert log, "broadcasts must deliver something for the check to bite"
        logs[flag] = log
    assert logs[True] == logs[False]


def test_rows_are_filled_per_sender_and_flushed_on_epoch_bump():
    sim, env = build_env(use_batched_links=True, n=6)
    src = env.node_names[0]
    env.nodes_in_range(src)
    assert src in env._quality_rows
    row_size = len(env._quality_rows[src])
    assert row_size >= 1
    env.notify_positions_changed()
    env.nodes_in_range(src)  # refresh rebuilds the row, not grows it
    assert len(env._quality_rows[src]) == row_size


def test_unicast_to_unattached_destination_is_dropped_quietly():
    sim, env = build_env(use_batched_links=True, n=3)
    sender = env.interface_of(env.node_names[0])
    sender.send("to-nobody", 50, destination="ghost")
    sim.run(until=1.0)
    assert "ghost" not in env._quality_rows.get(sender.node_name, {})


def test_quality_batch_falls_back_for_models_without_batch_method():
    """External models implementing only the pre-batch Protocol still work."""

    class MinimalModel:
        def path_loss_db(self, tx, rx, visibility=None):
            return 60.0 + tx.distance_to(rx) * 0.2

    budget = LinkBudget(MinimalModel())
    tx = Vec2(0.0, 0.0)
    rxs = [Vec2(30.0, 0.0), Vec2(0.0, 900.0)]
    batch = budget.quality_batch(tx, rxs)
    for rx, batched in zip(rxs, batch):
        assert quality_tuple(batched) == quality_tuple(budget.quality(tx, rx))

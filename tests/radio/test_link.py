"""Tests for link budgets."""

import math

import pytest

from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2
from repro.radio.link import LinkBudget


def test_snr_decreases_with_distance():
    budget = LinkBudget()
    origin = Vec2(0, 0)
    assert budget.snr_db(origin, Vec2(10, 0)) > budget.snr_db(origin, Vec2(200, 0))


def test_quality_usable_then_unusable_with_distance():
    budget = LinkBudget()
    near = budget.quality(Vec2(0, 0), Vec2(20, 0))
    assert near.usable
    assert near.rate_bps > 0
    assert 0.0 <= near.packet_error_rate <= 1.0
    far = budget.quality(Vec2(0, 0), Vec2(5000, 0))
    assert not far.usable
    assert far.rate_bps == 0.0
    assert far.packet_error_rate == 1.0


def test_rate_capped_at_max():
    budget = LinkBudget(max_rate_bps=10e6)
    quality = budget.quality(Vec2(0, 0), Vec2(5, 0))
    assert quality.rate_bps <= 10e6


def test_per_drops_with_margin():
    budget = LinkBudget(min_snr_db=3.0)
    assert budget.packet_error_rate(3.0) == pytest.approx(0.5)
    assert budget.packet_error_rate(20.0) < 0.01
    assert budget.packet_error_rate(-5.0) > 0.9


def test_occlusion_shrinks_effective_quality():
    visibility = VisibilityMap([Rectangle(40, -5, 60, 5)])
    budget = LinkBudget()
    clear = budget.quality(Vec2(0, 0), Vec2(100, 0), None)
    blocked = budget.quality(Vec2(0, 0), Vec2(100, 0), visibility)
    assert blocked.snr_db < clear.snr_db


def test_effective_range_is_positive_and_bounded():
    budget = LinkBudget()
    range_m = budget.effective_range()
    assert 50.0 < range_m < 10_000.0
    # A link at 80% of the effective range must be usable.
    assert budget.quality(Vec2(0, 0), Vec2(range_m * 0.8, 0)).usable


def test_transfer_time():
    budget = LinkBudget()
    assert budget.transfer_time(8e6, 1e6) == pytest.approx(8.0)
    assert math.isinf(budget.transfer_time(1000, 0.0))

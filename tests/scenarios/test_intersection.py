"""Tests for the looking-around-the-corner scenario."""

import pytest

from repro.scenarios.intersection import (
    IntersectionConfig,
    IntersectionScenario,
    build_intersection_scenario,
    corner_buildings,
)


def test_corner_buildings_occupy_all_quadrants():
    buildings = corner_buildings(setback=10.0, size=50.0)
    assert len(buildings) == 4
    centers = [b.centroid() for b in buildings]
    quadrants = {(c.x > 0, c.y > 0) for c in centers}
    assert len(quadrants) == 4


def test_scenario_builds_expected_structure():
    scenario = build_intersection_scenario(num_vehicles=4, seed=1)
    assert len(scenario.nodes) == 4
    assert len(scenario.vehicles) == 4
    assert scenario.ego is scenario.nodes[0]
    assert len(scenario.ground_truth()) == 5   # vehicles + pedestrian
    assert scenario.visibility.obstacles


def test_pedestrian_initially_occluded_from_ego():
    scenario = build_intersection_scenario(num_vehicles=4, seed=1)
    # At t=0 the ego sits far down the south arm; the pedestrian on the east
    # arm is either out of range or occluded — not plainly visible.
    from repro.perception.visibility import observer_visibility

    report = observer_visibility(
        scenario.ego.name,
        scenario.ego.position,
        scenario.ground_truth(),
        scenario.visibility,
        max_range=scenario.config.sensor_range,
    )
    assert "pedestrian-0" not in report.visible_labels


def test_short_run_produces_report_with_detection_metrics():
    scenario = build_intersection_scenario(num_vehicles=6, seed=7)
    report = scenario.run(duration=15.0)
    assert report.node_count == 6
    assert report.tasks_submitted > 0
    assert report.success_rate > 0.5
    assert 0.0 <= report.extra["occluded_detection_rate"] <= 1.0
    assert report.extra["perception_rounds"] > 0
    assert report.mesh_bytes > 0
    assert report.cellular_bytes == 0.0       # AirDnD never touches cellular


def test_offloading_dominates_over_local_execution():
    scenario = build_intersection_scenario(num_vehicles=6, seed=7)
    report = scenario.run(duration=15.0)
    assert report.offloaded_tasks >= report.local_tasks


def test_invalid_duration_rejected():
    scenario = build_intersection_scenario(num_vehicles=4, seed=0)
    with pytest.raises(ValueError):
        scenario.run(duration=0.0)

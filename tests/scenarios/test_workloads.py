"""Tests for workload generators and generic functions."""

import pytest

from repro.compute.faas import FunctionRegistry
from repro.scenarios.workloads import GenericComputeWorkload, register_generic_functions
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator
from tests.conftest import make_static_airdnd_nodes


def test_register_generic_functions_idempotent_names():
    registry = FunctionRegistry()
    register_generic_functions(registry)
    assert "generic_compute" in registry
    assert "map_update" in registry
    body_result = registry.get("generic_compute").body({"operations": 5.0, "label": "x"}, None)
    assert body_result == {"operations": 5.0, "label": "x"}
    assert registry.get("generic_compute").cost_model({"operations": 3e8}) == 3e8


def test_map_update_counts_pond_frames():
    registry = FunctionRegistry()
    register_generic_functions(registry)
    assert registry.get("map_update").body({"now": 0.0}, None) == {"frames_used": 0}


def test_workload_submits_tasks_at_roughly_the_requested_rate():
    sim = Simulator(seed=21)
    registry = FunctionRegistry()
    register_generic_functions(registry)
    environment = RadioEnvironment(sim, LinkBudget())
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    workload = GenericComputeWorkload(sim, nodes, registry, arrival_rate_per_s=2.0)
    sim.run(until=30.0)
    submitted = len(workload.submitted)
    assert 30 <= submitted <= 100        # Poisson(60) within generous bounds
    total_lifecycles = sum(len(n.orchestrator.lifecycles) for n in nodes)
    assert total_lifecycles == submitted


def test_workload_stop_halts_submissions():
    sim = Simulator(seed=22)
    registry = FunctionRegistry()
    register_generic_functions(registry)
    environment = RadioEnvironment(sim, LinkBudget())
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0)])
    workload = GenericComputeWorkload(sim, nodes, registry, arrival_rate_per_s=5.0)
    sim.run(until=5.0)
    count = len(workload.submitted)
    workload.stop()
    sim.run(until=10.0)
    assert len(workload.submitted) == count


def test_workload_rejects_bad_rate():
    sim = Simulator()
    registry = FunctionRegistry()
    register_generic_functions(registry)
    with pytest.raises(ValueError):
        GenericComputeWorkload(sim, [], registry, arrival_rate_per_s=0.0)


def test_workload_rejects_bad_redundancy():
    sim = Simulator()
    registry = FunctionRegistry()
    register_generic_functions(registry)
    with pytest.raises(ValueError):
        GenericComputeWorkload(sim, [], registry, redundancy=0)


def test_workload_stamps_redundancy_on_every_task():
    sim = Simulator(seed=23)
    registry = FunctionRegistry()
    register_generic_functions(registry)
    environment = RadioEnvironment(sim, LinkBudget())
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    workload = GenericComputeWorkload(
        sim, nodes, registry, arrival_rate_per_s=3.0, redundancy=3
    )
    sim.run(until=5.0)
    assert workload.submitted
    assert all(task.redundancy == 3 for task in workload.submitted)


def test_suspended_node_originates_no_tasks_until_resumed():
    sim = Simulator(seed=24)
    registry = FunctionRegistry()
    register_generic_functions(registry)
    environment = RadioEnvironment(sim, LinkBudget())
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    workload = GenericComputeWorkload(sim, nodes, registry, arrival_rate_per_s=5.0)
    workload.suspend_node(nodes[0])
    sim.run(until=10.0)
    suspended_submissions = len(nodes[0].orchestrator.lifecycles)
    assert suspended_submissions == 0
    assert len(nodes[1].orchestrator.lifecycles) > 0
    workload.resume_node(nodes[0])
    sim.run(until=20.0)
    assert len(nodes[0].orchestrator.lifecycles) > 0


def test_whole_fleet_suspended_keeps_arrival_process_alive():
    sim = Simulator(seed=25)
    registry = FunctionRegistry()
    register_generic_functions(registry)
    environment = RadioEnvironment(sim, LinkBudget())
    nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0)])
    workload = GenericComputeWorkload(sim, nodes, registry, arrival_rate_per_s=5.0)
    workload.suspend_node(nodes[0])
    sim.run(until=5.0)
    assert not workload.submitted
    workload.resume_node(nodes[0])
    sim.run(until=10.0)
    assert workload.submitted

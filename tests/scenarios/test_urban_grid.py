"""Tests for the urban grid scenario."""

from repro.scenarios.urban_grid import UrbanGridConfig, UrbanGridScenario, build_urban_grid_scenario


def test_scenario_structure_and_heterogeneity():
    scenario = build_urban_grid_scenario(num_vehicles=9, seed=3)
    assert len(scenario.nodes) == 9
    specs = {node.compute.spec.cpu_ops_per_second for node in scenario.nodes}
    assert len(specs) >= 2    # heterogeneous fleet


def test_homogeneous_fleet_option():
    scenario = UrbanGridScenario(UrbanGridConfig(num_vehicles=6, heterogeneous_compute=False, seed=1))
    specs = {node.compute.spec.cpu_ops_per_second for node in scenario.nodes}
    assert len(specs) == 1


def test_run_produces_mesh_and_task_metrics():
    scenario = build_urban_grid_scenario(num_vehicles=10, seed=3)
    report = scenario.run(duration=15.0)
    assert report.tasks_submitted > 0
    assert report.success_rate > 0.5
    assert report.extra["mesh_largest_component"] >= 2
    assert report.extra["mesh_mean_degree"] > 0
    assert 0.0 <= report.extra["mean_utilization"] <= 1.0
    assert report.extra["max_utilization"] >= report.extra["mean_utilization"]


def test_reports_are_reproducible_for_same_seed():
    first = build_urban_grid_scenario(num_vehicles=8, seed=5).run(duration=10.0)
    second = build_urban_grid_scenario(num_vehicles=8, seed=5).run(duration=10.0)
    assert first.tasks_submitted == second.tasks_submitted
    assert first.tasks_completed == second.tasks_completed
    assert first.mesh_bytes == second.mesh_bytes

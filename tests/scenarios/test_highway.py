"""Tests for the highway scenario."""

from repro.scenarios.highway import HighwayConfig, HighwayScenario, build_highway_scenario


def test_structure_two_directions():
    scenario = build_highway_scenario(vehicles_per_direction=4, seed=1)
    assert len(scenario.nodes) == 8
    forward = [v for v in scenario.vehicles if v.name.startswith("fwd")]
    backward = [v for v in scenario.vehicles if v.name.startswith("bwd")]
    assert len(forward) == len(backward) == 4
    # Directions are opposite.
    scenario.sim.run(until=2.0)
    assert forward[0].velocity.x > 0
    assert backward[0].velocity.x < 0


def test_run_reports_contact_time_statistics():
    scenario = build_highway_scenario(vehicles_per_direction=5, seed=2)
    report = scenario.run(duration=15.0)
    assert report.tasks_submitted > 0
    assert "mean_predicted_contact_s" in report.extra
    assert report.extra["mean_predicted_contact_s"] >= 0.0


def test_same_direction_platoon_stays_connected():
    scenario = build_highway_scenario(vehicles_per_direction=4, seed=3, headway=50.0)
    scenario.run(duration=10.0)
    lead = scenario.nodes[0]
    neighbors = lead.mesh.neighbors.names()
    assert any(name.startswith("fwd") for name in neighbors)

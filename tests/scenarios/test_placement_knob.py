"""The shared ``placement`` config knob: baselines as a sweep dimension."""

import pytest

from repro.baselines import (
    AuctionPlacement,
    CodedAuctionPlacement,
    ContractPlacement,
)
from repro.core.placement import BestScorePlacement
from repro.scenarios import build_scenario
from repro.scenarios.base import PLACEMENT_POLICIES, BaseScenarioConfig


def test_default_placement_is_airdnd_best_score():
    scenario = build_scenario("highway", n=4, seed=0)
    for node in scenario.nodes:
        assert isinstance(node.orchestrator.placement, BestScorePlacement)


@pytest.mark.parametrize(
    ("knob", "policy_type"),
    [
        ("decloud_auction", AuctionPlacement),
        ("smart_contract", ContractPlacement),
        ("coded_vec_auction", CodedAuctionPlacement),
    ],
)
def test_baseline_placements_install_per_node_instances(knob, policy_type):
    scenario = build_scenario("highway", n=4, seed=0, placement=knob)
    policies = [node.orchestrator.placement for node in scenario.nodes]
    assert all(isinstance(policy, policy_type) for policy in policies)
    # Fresh instance per node: stateful mechanisms must not share state.
    assert len({id(policy) for policy in policies}) == len(policies)


def test_unknown_placement_fails_fast():
    with pytest.raises(ValueError, match="unknown placement"):
        BaseScenarioConfig(placement="bogus")


def test_every_registered_policy_builds():
    for knob in PLACEMENT_POLICIES:
        config = BaseScenarioConfig(placement=knob)
        policy = config.placement_policy()
        assert (policy is None) == (knob == "airdnd")


def test_placement_knob_reaches_all_scenarios():
    for name in ("urban-grid", "highway", "intersection"):
        scenario = build_scenario(name, n=4, seed=0, placement="smart_contract")
        assert all(
            isinstance(node.orchestrator.placement, ContractPlacement)
            for node in scenario.nodes
        )

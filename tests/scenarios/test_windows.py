"""The run-window primitives: open_window / advance / close_window.

``Scenario.run()`` is now a thin composition of these three; the session
engine in :mod:`repro.service` drives them piecewise.  These tests pin the
state machine (double-open, advance-without-window, beyond-the-end), the
byte-identity of piecewise driving against one ``run()`` call, the
early-stop accounting (``stopped_early``), and the argument-validation
bugfixes that rode along with the refactor.
"""

import inspect

import pytest

from repro.scenarios import build_scenario
from repro.scenarios.base import Scenario, ScenarioReport
from repro.simcore import StopSimulation

DURATION = 6.0


def _build(seed=0, **knobs):
    return build_scenario("urban-grid", n=4, seed=seed, **knobs)


# --------------------------------------------------------- window lifecycle


def test_piecewise_window_matches_single_run():
    whole = _build(seed=11)
    report_whole = whole.run(DURATION).as_dict()

    pieces = _build(seed=11)
    end = pieces.open_window(DURATION)
    assert pieces.window_open
    assert pieces.window_end == end
    while True:
        outcome = pieces.advance(max_events=37)
        if outcome.exhausted:
            break
    report_pieces = pieces.close_window().as_dict()
    assert not pieces.window_open
    assert report_pieces == report_whole


def test_advance_until_partial_then_to_end():
    scenario = _build(seed=2)
    end = scenario.open_window(DURATION)
    mid = end - DURATION / 2
    outcome = scenario.advance(until=mid)
    assert outcome.exhausted
    assert scenario.sim.now == mid  # idle clock advanced to the slice target
    scenario.advance()
    report = scenario.close_window()
    assert report.duration_s == DURATION


def test_open_window_twice_is_an_error():
    scenario = _build()
    scenario.open_window(DURATION)
    with pytest.raises(RuntimeError, match="already open"):
        scenario.open_window(DURATION)


def test_advance_and_close_require_an_open_window():
    scenario = _build()
    with pytest.raises(RuntimeError, match="no open run window"):
        scenario.advance()
    with pytest.raises(RuntimeError, match="no open run window"):
        scenario.close_window()


def test_advance_beyond_window_end_is_an_error():
    scenario = _build()
    end = scenario.open_window(DURATION)
    with pytest.raises(ValueError, match="beyond the window end"):
        scenario.advance(until=end + 1.0)


def test_open_window_validates_duration_and_horizon():
    scenario = _build()
    with pytest.raises(ValueError, match="duration must be positive"):
        scenario.open_window(0.0)
    with pytest.raises(ValueError, match="fault_horizon"):
        scenario.open_window(DURATION, fault_horizon=DURATION / 2)


# ------------------------------------------------- snapshot argument bugfix


def test_snapshot_to_without_snapshot_at_fails_fast(tmp_path):
    """Regression: ``snapshot_to`` alone used to be silently ignored."""
    scenario = _build()
    target = tmp_path / "never_written.reprosnap"
    with pytest.raises(ValueError, match="snapshot_to without snapshot_at"):
        scenario.run(DURATION, snapshot_to=str(target))
    assert not target.exists()


def test_snapshot_at_still_requires_snapshot_to():
    scenario = _build()
    with pytest.raises(ValueError, match="snapshot_at requires snapshot_to"):
        scenario.run(DURATION, snapshot_at=2.0)


# ------------------------------------------------------ early-stop account


def test_stop_simulation_accounts_elapsed_time_not_requested_duration():
    """Regression: a stopped window used to book the full duration."""
    scenario = _build(seed=5)

    def stopper():
        raise StopSimulation

    scenario.sim.schedule_at(2.0, stopper)
    report = scenario.run(DURATION)
    assert report.stopped_early
    # The window halted at t=2.0; duration_s reflects what actually ran.
    assert report.duration_s == pytest.approx(2.0)
    assert report.duration_s < DURATION
    assert report.as_dict()["stopped_early"] == 1.0


def test_uninterrupted_report_has_no_stopped_early_key():
    """The historical key set is preserved for golden fixtures/exports."""
    report = _build(seed=1).run(DURATION)
    assert not report.stopped_early
    assert "stopped_early" not in report.as_dict()


def test_stopped_window_elapsed_time_accumulates_across_windows():
    scenario = _build(seed=5)

    def stopper():
        raise StopSimulation

    scenario.sim.schedule_at(2.0, stopper)
    first = scenario.run(DURATION)
    assert first.stopped_early
    # The next window re-arms the loop and books its full duration on top
    # of the 2.0 elapsed seconds of the stopped one.
    second = scenario.run(DURATION)
    assert second.duration_s == pytest.approx(2.0 + DURATION)


# ------------------------------------------------------ deprecation hygiene


def test_run_and_resume_route_through_window_primitives():
    """Deprecation hygiene: no second run-loop implementation remains.

    ``Scenario.run``/``resume`` stay public and byte-identical, but both
    must compose the window primitives — never call ``sim.run`` or touch
    the event queue themselves.
    """
    for method in (Scenario.run, Scenario.resume):
        source = inspect.getsource(method)
        assert "advance(" in source
        assert "close_window(" in source
        assert "sim.run" not in source
        assert "_queue" not in source
    assert "open_window(" in inspect.getsource(Scenario.run)

"""Protocol knobs (beacon_period, min_trust) reach every node's AirDnDConfig."""

import pytest

from repro.scenarios import SCENARIO_BUILDERS, build_scenario

SMALL_FLEET = {"intersection": 3, "urban-grid": 3, "highway": 2}


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_build_scenario_forwards_protocol_knobs(name):
    scenario = build_scenario(name, n=SMALL_FLEET[name], seed=1,
                              beacon_period=0.25, min_trust=0.7)
    assert scenario.config.beacon_period == 0.25
    assert scenario.config.min_trust == 0.7
    for node in scenario.nodes:
        assert node.config.beacon_period == 0.25
        assert node.config.min_trust == 0.7
        # ...and the knobs land in the live protocol objects, not just the
        # config snapshot.
        assert node.mesh.beacon_agent.beacon_period == 0.25
        assert node.orchestrator.scorer.min_trust == 0.7


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_scenario_defaults_keep_airdnd_defaults(name):
    scenario = build_scenario(name, n=SMALL_FLEET[name], seed=1)
    for node in scenario.nodes:
        assert node.config.beacon_period == 0.5
        assert node.config.min_trust == 0.3


def test_invalid_knob_values_fail_at_construction():
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, beacon_period=0.0)
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, min_trust=1.5)

"""Protocol knobs (beacon_period, min_trust) reach every node's AirDnDConfig."""

import pytest

from repro.scenarios import SCENARIO_BUILDERS, build_scenario

SMALL_FLEET = {"intersection": 3, "urban-grid": 3, "highway": 2}


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_build_scenario_forwards_protocol_knobs(name):
    scenario = build_scenario(name, n=SMALL_FLEET[name], seed=1,
                              beacon_period=0.25, min_trust=0.7)
    assert scenario.config.beacon_period == 0.25
    assert scenario.config.min_trust == 0.7
    for node in scenario.nodes:
        assert node.config.beacon_period == 0.25
        assert node.config.min_trust == 0.7
        # ...and the knobs land in the live protocol objects, not just the
        # config snapshot.
        assert node.mesh.beacon_agent.beacon_period == 0.25
        assert node.orchestrator.scorer.min_trust == 0.7


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_scenario_defaults_keep_airdnd_defaults(name):
    scenario = build_scenario(name, n=SMALL_FLEET[name], seed=1)
    for node in scenario.nodes:
        assert node.config.beacon_period == 0.5
        assert node.config.min_trust == 0.3


def test_invalid_knob_values_fail_at_construction():
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, beacon_period=0.0)
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, min_trust=1.5)


def test_every_scenario_shares_one_candidate_scorer():
    """All of a scenario's nodes rank through the same scorer instance."""
    from repro.scenarios import build_scenario

    for name in ("intersection", "urban-grid", "highway"):
        scenario = build_scenario(name, n=4, seed=1)
        scorers = {id(node.orchestrator.scorer) for node in scenario.nodes}
        assert scorers == {id(scenario.scorer)}, name


def test_shared_scorer_inherits_scenario_min_trust():
    from repro.scenarios import build_scenario

    scenario = build_scenario("highway", n=4, seed=1, min_trust=0.7)
    assert scenario.scorer.min_trust == 0.7


def test_urban_grid_buildings_knob_creates_occluding_visibility():
    from repro.geometry.vector import Vec2
    from repro.scenarios.urban_grid import build_urban_grid_scenario

    open_world = build_urban_grid_scenario(num_vehicles=2, seed=0)
    assert open_world.visibility is None and open_world.buildings == []

    built = build_urban_grid_scenario(num_vehicles=2, seed=0, with_buildings=True)
    cfg = built.config
    assert len(built.buildings) == (cfg.grid_rows - 1) * (cfg.grid_cols - 1)
    assert built.environment.visibility is built.visibility
    # A ray cutting diagonally through a block interior is occluded; one
    # running along a street axis is not.
    spacing = cfg.block_spacing
    assert built.visibility.is_occluded(
        Vec2(spacing * 0.5, spacing * 0.1), Vec2(spacing * 0.5, spacing * 0.9)
    )
    assert built.visibility.has_line_of_sight(
        Vec2(0.0, 0.0), Vec2(spacing, 0.0)
    )


def test_urban_grid_street_width_knob_fails_fast():
    import pytest

    from repro.scenarios.urban_grid import UrbanGridConfig

    with pytest.raises(ValueError, match="street_width"):
        UrbanGridConfig(street_width=150.0)  # == block_spacing: no block left
    with pytest.raises(ValueError, match="street_width"):
        UrbanGridConfig(street_width=-20.0)  # would pave buildings over roads

"""Protocol knobs (beacon_period, min_trust) reach every node's AirDnDConfig."""

import pytest

from repro.scenarios import SCENARIO_BUILDERS, build_scenario

SMALL_FLEET = {"intersection": 3, "urban-grid": 3, "highway": 2}


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_build_scenario_forwards_protocol_knobs(name):
    scenario = build_scenario(name, n=SMALL_FLEET[name], seed=1,
                              beacon_period=0.25, min_trust=0.7)
    assert scenario.config.beacon_period == 0.25
    assert scenario.config.min_trust == 0.7
    for node in scenario.nodes:
        assert node.config.beacon_period == 0.25
        assert node.config.min_trust == 0.7
        # ...and the knobs land in the live protocol objects, not just the
        # config snapshot.
        assert node.mesh.beacon_agent.beacon_period == 0.25
        assert node.orchestrator.scorer.min_trust == 0.7


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_scenario_defaults_keep_airdnd_defaults(name):
    scenario = build_scenario(name, n=SMALL_FLEET[name], seed=1)
    for node in scenario.nodes:
        assert node.config.beacon_period == 0.5
        assert node.config.min_trust == 0.3


def test_invalid_knob_values_fail_at_construction():
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, beacon_period=0.0)
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, min_trust=1.5)


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_every_scenario_installs_a_fault_injector(name):
    scenario = build_scenario(name, n=SMALL_FLEET[name], seed=1)
    assert scenario.faults is not None
    # Default knobs are null: no adversaries, and the run report still
    # exports the fault metrics.
    assert scenario.faults.malicious_names == []
    report = scenario.run(2.0)
    assert report.extra["availability"] == 1.0
    assert report.extra["crashes_injected"] == 0.0
    assert "wrong_result_acceptance_rate" in report.extra
    assert "reputation_gap" in report.extra


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_fault_knobs_reach_the_injector(name):
    fleet = {"intersection": 4, "urban-grid": 4, "highway": 2}[name]
    scenario = build_scenario(
        name, n=fleet, seed=1, malicious_fraction=0.5, adversary_profile="free_rider"
    )
    expected = int(0.5 * len(scenario.nodes) + 0.5)
    assert len(scenario.faults.malicious_names) == expected
    for victim in scenario.faults.malicious_names:
        node = next(n for n in scenario.nodes if n.name == victim)
        assert node.executor.silent


def test_invalid_fault_knob_values_fail_at_construction():
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, malicious_fraction=1.5)
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, crash_rate=-0.1)
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, adversary_profile="nope")
    with pytest.raises(ValueError):
        build_scenario("highway", n=2, seed=0, task_redundancy=0)


def test_task_redundancy_reaches_the_workload():
    scenario = build_scenario("highway", n=2, seed=0, task_redundancy=3)
    assert scenario.workload.redundancy == 3


def test_every_scenario_shares_one_candidate_scorer():
    """All of a scenario's nodes rank through the same scorer instance."""
    from repro.scenarios import build_scenario

    for name in ("intersection", "urban-grid", "highway"):
        scenario = build_scenario(name, n=4, seed=1)
        scorers = {id(node.orchestrator.scorer) for node in scenario.nodes}
        assert scorers == {id(scenario.scorer)}, name


def test_shared_scorer_inherits_scenario_min_trust():
    from repro.scenarios import build_scenario

    scenario = build_scenario("highway", n=4, seed=1, min_trust=0.7)
    assert scenario.scorer.min_trust == 0.7


def test_urban_grid_buildings_knob_creates_occluding_visibility():
    from repro.geometry.vector import Vec2
    from repro.scenarios.urban_grid import build_urban_grid_scenario

    open_world = build_urban_grid_scenario(num_vehicles=2, seed=0)
    assert open_world.visibility is None and open_world.buildings == []

    built = build_urban_grid_scenario(num_vehicles=2, seed=0, with_buildings=True)
    cfg = built.config
    assert len(built.buildings) == (cfg.grid_rows - 1) * (cfg.grid_cols - 1)
    assert built.environment.visibility is built.visibility
    # A ray cutting diagonally through a block interior is occluded; one
    # running along a street axis is not.
    spacing = cfg.block_spacing
    assert built.visibility.is_occluded(
        Vec2(spacing * 0.5, spacing * 0.1), Vec2(spacing * 0.5, spacing * 0.9)
    )
    assert built.visibility.has_line_of_sight(
        Vec2(0.0, 0.0), Vec2(spacing, 0.0)
    )


def test_urban_grid_street_width_knob_fails_fast():
    import pytest

    from repro.scenarios.urban_grid import UrbanGridConfig

    with pytest.raises(ValueError, match="street_width"):
        UrbanGridConfig(street_width=150.0)  # == block_spacing: no block left
    with pytest.raises(ValueError, match="street_width"):
        UrbanGridConfig(street_width=-20.0)  # would pave buildings over roads


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_fast_math_knob_selects_the_radio_tier(name):
    exact = build_scenario(name, n=SMALL_FLEET[name], seed=1)
    fast = build_scenario(name, n=SMALL_FLEET[name], seed=1, fast_math=True)
    assert exact.config.fast_math is False
    assert exact.environment.link_budget.fast_math is False
    assert fast.config.fast_math is True
    assert fast.environment.link_budget.fast_math is True


def test_fast_math_knob_fails_fast_on_non_bool():
    # `--set fast_math=1` must die at construction, not silently run the
    # exact tier under a truthy label.
    with pytest.raises(ValueError, match="fast_math"):
        build_scenario("highway", n=2, seed=0, fast_math=1)

"""Tests for the scenario base class and its report building."""

import math

import pytest

from repro.scenarios.base import Scenario, ScenarioReport
from repro.simcore.simulator import Simulator
from tests.conftest import make_static_airdnd_nodes
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget


def test_empty_report_defaults():
    report = ScenarioReport(duration_s=10.0, node_count=0)
    assert report.success_rate == 1.0          # nothing submitted, nothing failed
    data = report.as_dict()
    assert data["duration_s"] == 10.0
    assert data["tasks_submitted"] == 0.0
    assert math.isnan(data["mean_task_latency_s"])


def test_success_rate_with_failures():
    report = ScenarioReport(duration_s=1.0, node_count=1, tasks_completed=3, tasks_failed=1)
    assert report.success_rate == 0.75


def test_extra_metrics_merged_into_dict():
    report = ScenarioReport(duration_s=1.0, node_count=1, extra={"custom": 42.0})
    assert report.as_dict()["custom"] == 42.0


def test_empty_scenario_runs_and_reports():
    scenario = Scenario(Simulator(seed=1), name="empty")
    report = scenario.run(duration=5.0)
    assert report.node_count == 0
    assert report.tasks_submitted == 0
    assert report.duration_s == 5.0


def test_scenario_report_aggregates_node_lifecycles(registry):
    sim = Simulator(seed=13)
    environment = RadioEnvironment(sim, LinkBudget())
    scenario = Scenario(sim, name="manual")
    scenario.nodes = make_static_airdnd_nodes(sim, environment, registry, [(0, 0), (50, 0)])
    sim.run(until=2.0)
    scenario.nodes[0].submit_function("noop")
    scenario.nodes[1].submit_function("noop")
    report = scenario.run(duration=10.0)
    assert report.tasks_submitted == 2
    assert report.tasks_completed == 2
    assert report.offloaded_tasks + report.local_tasks == 2
    assert report.mesh_bytes > 0
    assert not math.isnan(report.mean_task_latency_s)
    assert report.p95_task_latency_s >= report.mean_task_latency_s * 0.5


def test_cumulative_duration_across_runs():
    scenario = Scenario(Simulator(seed=1))
    scenario.run(duration=3.0)
    report = scenario.run(duration=2.0)
    assert report.duration_s == 5.0


def test_hooks_called_in_order():
    calls = []

    class Hooked(Scenario):
        def before_run(self):
            calls.append("before")

        def after_run(self):
            calls.append("after")

    Hooked(Simulator(seed=1)).run(duration=1.0)
    assert calls == ["before", "after"]

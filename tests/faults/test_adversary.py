"""Tests for adversary profiles (`repro.faults.adversary`)."""

import pytest

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.api import AirDnDNode
from repro.faults.adversary import (
    ADVERSARY_PROFILES,
    CorruptedResult,
    apply_profile,
    is_corrupted,
)
from repro.geometry.vector import Vec2
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def build_pair(seed=31):
    sim = Simulator(seed=seed)
    environment = RadioEnvironment(sim, LinkBudget())
    registry = FunctionRegistry()
    registry.register(
        FunctionDefinition("answer", lambda p, d: 42, lambda p: 5e7, result_size_bytes=300)
    )
    requester = AirDnDNode(
        sim, environment, StaticNode(sim, Vec2(0, 0), name="req"), registry
    )
    executor = AirDnDNode(
        sim, environment, StaticNode(sim, Vec2(40, 0), name="exe"), registry
    )
    sim.run(until=2.0)
    return sim, requester, executor


def test_registry_contains_all_three_profiles():
    assert set(ADVERSARY_PROFILES) == {"liar", "free_rider", "inflator"}


def test_apply_profile_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown adversary profile"):
        apply_profile(object(), "nope")


def test_liar_results_are_recognisable_and_liar_distinct():
    sim, requester, executor = build_pair()
    apply_profile(executor, "liar")
    lifecycle = requester.submit_function("answer")
    sim.run(until=10.0)
    assert lifecycle.succeeded
    value = lifecycle.result.value
    assert is_corrupted(value)
    assert isinstance(value, CorruptedResult)
    assert value.by == "exe"
    assert value.original == 42
    # Two liars fabricating from the same honest value never agree.
    assert CorruptedResult(42, "a") != CorruptedResult(42, "b")
    assert CorruptedResult(42, "a") == CorruptedResult(42, "a")
    assert not is_corrupted(42)


def test_free_rider_accepts_but_never_replies():
    sim, requester, executor = build_pair()
    apply_profile(executor, "free_rider")
    lifecycle = requester.submit_function("answer")
    sim.run(until=30.0)
    assert executor.executor.offers_accepted > 0
    assert executor.executor.results_sent == 0
    # The requester eventually gave up on the free rider and fell back to
    # local execution; either way its trust in the free rider dropped.
    assert lifecycle.is_terminal
    initial = requester.trust.config.initial_score
    assert requester.trust.score_of("exe") < initial


def test_inflator_advertises_too_good_beacons():
    sim, requester, executor = build_pair()
    apply_profile(executor, "inflator")
    sim.run(until=4.0)
    entry = requester.mesh.neighbors.entry("exe")
    assert entry is not None
    assert entry.beacon.compute_headroom_ops == pytest.approx(1e12)
    assert entry.beacon.queue_length == 0
    assert entry.beacon.trust_score == 1.0

"""Tests for the live fault injector (`repro.faults.injector`)."""

import math

import pytest

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.api import AirDnDNode
from repro.faults import FaultInjector, FaultKnobs, FaultSchedule, null_schedule
from repro.geometry.vector import Vec2
from repro.mobility.manager import MobilityManager
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def build_fleet(n=3, seed=21, spacing=50.0, with_mobility=False):
    sim = Simulator(seed=seed)
    mobility = MobilityManager(sim, tick=0.2) if with_mobility else None
    environment = RadioEnvironment(sim, LinkBudget(), mobility=mobility)
    registry = FunctionRegistry()
    registry.register(
        FunctionDefinition("answer", lambda p, d: 42, lambda p: 5e7, result_size_bytes=300)
    )
    nodes = []
    for index in range(n):
        mobile = StaticNode(sim, Vec2(index * spacing, 0.0), name=f"n-{index}")
        if mobility is not None:
            mobility.add_node(mobile)
        nodes.append(AirDnDNode(sim, environment, mobile, registry))
    return sim, environment, mobility, registry, nodes


# ------------------------------------------------------------ crash/recover


def test_crash_detaches_and_stops_beaconing():
    sim, environment, _, _, nodes = build_fleet()
    injector = FaultInjector(sim, nodes, environment=environment)
    sim.run(until=2.0)
    victim = nodes[1]
    assert victim.name in environment.node_names
    assert injector.crash(victim.name)
    assert victim.crashed
    assert victim.name not in environment.node_names
    assert not injector.crash(victim.name)  # idempotent
    sent_at_crash = victim.mesh.beacon_agent.beacons_sent
    sim.run(until=6.0)
    assert victim.mesh.beacon_agent.beacons_sent == sent_at_crash


def test_crashed_peer_leaves_live_views_within_beacon_timeout():
    """The membership-expiry audit: silence ⇒ view exit ⇒ counted leave."""
    sim, environment, _, _, nodes = build_fleet()
    injector = FaultInjector(sim, nodes, environment=environment)
    sim.run(until=2.0)
    observer = nodes[0]
    victim = nodes[1]
    assert observer.mesh.membership.is_member(victim.name)
    leaves_before = observer.mesh.membership.stats.leaves
    injector.crash(victim.name)
    crash_time = sim.now
    lifetime = observer.config.neighbor_lifetime
    # Within one neighbour lifetime (plus in-flight slack) the peer is out of
    # the *view*, even though the expiry sweep may not have fired yet.
    sim.run(until=crash_time + lifetime + 0.2)
    assert not observer.mesh.membership.is_member(victim.name)
    assert victim.name not in observer.mesh.membership.members()
    # ... and by the next sweep (half a lifetime later at worst) it has been
    # evicted and counted as a leave.
    sim.run(until=crash_time + 1.5 * lifetime + 0.2)
    assert observer.mesh.membership.stats.leaves > leaves_before
    assert victim.name not in observer.mesh.neighbors.names()


def test_recover_rejoins_with_fresh_neighbor_state():
    sim, environment, _, _, nodes = build_fleet()
    injector = FaultInjector(sim, nodes, environment=environment)
    sim.run(until=2.0)
    victim = nodes[1]
    old_mesh = victim.mesh
    assert len(old_mesh.neighbors) > 0
    injector.crash(victim.name)
    sim.run(until=sim.now + 1.0)
    assert injector.recover(victim.name)
    assert not victim.crashed
    assert not injector.recover(victim.name)  # idempotent
    # Brand-new stack, empty table, re-attached interface.
    assert victim.mesh is not old_mesh
    assert len(victim.mesh.neighbors) == 0
    assert victim.name in environment.node_names
    rejoin_start = sim.now
    sim.run(until=rejoin_start + 3.0)
    # The node heard fresh beacons and neighbours re-discovered it.
    assert len(victim.mesh.neighbors) > 0
    assert nodes[0].mesh.membership.is_member(victim.name)
    assert injector.rejoin_delays and injector.mean_recovery_time_s() > 0


def test_recovered_node_serves_tasks_again():
    sim, environment, _, _, nodes = build_fleet(n=2)
    injector = FaultInjector(sim, nodes, environment=environment)
    sim.run(until=2.0)
    requester, executor = nodes
    injector.crash(executor.name)
    sim.run(until=sim.now + 1.0)
    injector.recover(executor.name)
    sim.run(until=sim.now + 2.0)
    lifecycle = requester.submit_function("answer")
    sim.run(until=sim.now + 10.0)
    assert lifecycle.succeeded
    assert lifecycle.result.executor == executor.name


def test_crash_fails_in_flight_and_new_submissions():
    sim, environment, _, _, nodes = build_fleet(n=2)
    injector = FaultInjector(sim, nodes, environment=environment)
    sim.run(until=2.0)
    requester = nodes[0]
    lifecycle = requester.submit_function("answer")
    injector.crash(requester.name)
    assert lifecycle.is_terminal and not lifecycle.succeeded
    assert "crashed" in lifecycle.result.failure_reason
    offline = requester.submit_function("answer")
    assert offline.is_terminal and not offline.succeeded
    injector.recover(requester.name)
    sim.run(until=sim.now + 3.0)
    back = requester.submit_function("answer")
    sim.run(until=sim.now + 10.0)
    assert back.succeeded


def test_crash_and_recover_maintain_mobility_registration():
    sim, environment, mobility, _, nodes = build_fleet(with_mobility=True)
    injector = FaultInjector(sim, nodes, environment=environment, mobility=mobility)
    sim.run(until=1.0)
    victim = nodes[2]
    injector.crash(victim.name)
    assert not mobility.has_node(victim.name)
    assert victim.name not in mobility.substrate
    injector.recover(victim.name)
    assert mobility.has_node(victim.name)
    assert victim.name in mobility.substrate


def test_availability_accounts_open_and_closed_downtime():
    sim, environment, _, _, nodes = build_fleet(n=4)
    injector = FaultInjector(sim, nodes, environment=environment)
    sim.run(until=1.0)
    injector.crash(nodes[0].name)
    sim.run(until=3.0)
    injector.recover(nodes[0].name)   # 2 s closed downtime
    injector.crash(nodes[1].name)
    sim.run(until=4.0)                # 1 s open downtime
    assert injector.downtime_s() == pytest.approx(3.0)
    # 4 nodes over 4 s = 16 node-seconds, 3 down.
    assert injector.availability() == pytest.approx(1.0 - 3.0 / 16.0)
    extra = injector.report_extra()
    assert extra["crashes_injected"] == 2.0
    assert extra["recoveries_injected"] == 1.0


# ------------------------------------------------------- radio degradation


def test_radio_degradation_bursts_stack_and_restore_exactly():
    sim, environment, _, _, nodes = build_fleet()
    injector = FaultInjector(sim, nodes, environment=environment)
    budget = environment.link_budget
    baseline = budget.noise_penalty_db
    assert baseline == 0.0
    snr_before = environment.link_quality(nodes[0].name, nodes[1].name).snr_db
    injector._radio_degrade(6.0)
    injector._radio_degrade(3.0)
    assert budget.noise_penalty_db == pytest.approx(9.0)
    snr_degraded = environment.link_quality(nodes[0].name, nodes[1].name).snr_db
    assert snr_degraded == pytest.approx(snr_before - 9.0)
    injector._radio_restore(6.0)
    assert budget.noise_penalty_db == pytest.approx(3.0)
    injector._radio_restore(3.0)
    assert budget.noise_penalty_db == 0.0  # exact, not approximate
    assert environment.link_quality(nodes[0].name, nodes[1].name).snr_db == snr_before


def test_loss_bursts_combine_independently_and_clear():
    sim, environment, _, _, nodes = build_fleet()
    injector = FaultInjector(sim, nodes, environment=environment)
    injector._loss_start(0.5)
    injector._loss_start(0.5)
    assert environment.extra_loss_probability == pytest.approx(0.75)
    injector._loss_end(0.5)
    assert environment.extra_loss_probability == pytest.approx(0.5)
    injector._loss_end(0.5)
    assert environment.extra_loss_probability == 0.0


def test_loss_burst_actually_drops_frames():
    sim, environment, _, _, nodes = build_fleet(n=2)
    injector = FaultInjector(sim, nodes, environment=environment)
    injector._loss_start(1.0)   # drop everything
    sim.run(until=4.0)
    assert sim.monitor.counter_value("radio.frames_delivered") == 0
    assert sim.monitor.counter_value("radio.frames_lost") > 0
    injector._loss_end(1.0)
    sim.run(until=8.0)
    assert sim.monitor.counter_value("radio.frames_delivered") > 0


# --------------------------------------------------------------- schedules


def test_arm_null_schedule_is_inert():
    sim, environment, _, _, nodes = build_fleet()
    injector = FaultInjector(sim, nodes, environment=environment)
    pending_before = sim.pending_events
    assert injector.arm(null_schedule(3), start=0.0, duration=50.0) == 0
    assert sim.pending_events == pending_before


def test_arm_executes_crashes_and_recoveries_from_schedule():
    sim, environment, _, _, nodes = build_fleet(n=4)
    injector = FaultInjector(sim, nodes, environment=environment)
    schedule = FaultSchedule(
        FaultKnobs(crash_rate=0.05, mean_downtime=2.0), seed=17
    )
    armed = injector.arm(schedule, start=0.0, duration=40.0)
    assert armed > 0
    sim.run(until=40.0)
    assert injector.crashes_injected > 0
    assert injector.crashes_injected >= injector.recoveries_injected
    assert sim.monitor.counter_value("faults.crashes") == injector.crashes_injected


def test_assign_adversaries_rejects_unknown_nodes():
    sim, environment, _, _, nodes = build_fleet()
    injector = FaultInjector(sim, nodes, environment=environment)
    with pytest.raises(ValueError, match="unknown node"):
        injector.assign_adversaries({"ghost": "liar"})


def test_report_extra_mean_recovery_time_nan_without_recoveries():
    sim, environment, _, _, nodes = build_fleet()
    injector = FaultInjector(sim, nodes, environment=environment)
    assert math.isnan(injector.report_extra()["mean_recovery_time_s"])

"""Degrade → restore must be invisible afterwards at the fast tier.

The statistical tier caches per-epoch broadcast plans (link qualities baked
in at build time).  A radio degradation that is later restored must not
linger in those caches: after restore, broadcasts must behave exactly as
they did before the degradation.  The fleet here is static and un-ticked —
no mobility epoch ever bumps on its own — so this test fails if the
degrade/restore path forgets to flush the fast-plan caches itself
(``notify_positions_changed``), which is precisely the regression it pins.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry.vector import Vec2
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator

#: Two nodes comfortably in range of each other.
POSITIONS = [Vec2(0.0, 0.0), Vec2(60.0, 0.0)]


def build_pair(seed: int = 42):
    sim = Simulator(seed=seed)
    environment = RadioEnvironment(sim, LinkBudget(fast_math=True))
    received: List[Tuple[float, str, float]] = []
    interfaces = []
    for index, position in enumerate(POSITIONS):
        interface = environment.attach(
            f"n-{index}", lambda position=position: position
        )
        interface.on_receive(
            lambda frame, quality, name=f"n-{index}": received.append(
                (sim.now, name, quality.snr_db)
            )
        )
        interfaces.append(interface)
    return sim, environment, received, interfaces


def test_noise_penalty_restore_is_invisible_afterwards():
    sim, environment, received, interfaces = build_pair()
    sender = interfaces[0]

    sim.schedule(0.1, lambda: sender.send(None, 200, kind="beacon"))

    def degrade() -> None:
        environment.link_budget.noise_penalty_db = 40.0
        environment.notify_positions_changed()

    def restore() -> None:
        environment.link_budget.noise_penalty_db = 0.0
        environment.notify_positions_changed()

    sim.schedule(0.2, degrade)
    sim.schedule(0.3, lambda: sender.send(None, 200, kind="beacon"))
    sim.schedule(0.4, restore)
    sim.schedule(0.5, lambda: sender.send(None, 200, kind="beacon"))
    sim.run(until=1.0)

    before = [r for r in received if r[0] < 0.2]
    during = [r for r in received if 0.3 <= r[0] < 0.4]
    after = [r for r in received if r[0] >= 0.5]
    # The baseline broadcast lands; the degraded one is wiped out (40 dB of
    # extra noise floors the 60 m link); the post-restore one must land with
    # *exactly* the baseline SNR — any residue from a stale cached plan
    # (degraded SNRs surviving the restore) fails this equality.
    assert len(before) == 1
    assert during == []
    assert len(after) == 1
    assert after[0][1] == before[0][1]
    assert after[0][2] == before[0][2]


def test_extra_loss_restore_is_invisible_afterwards():
    sim, environment, received, interfaces = build_pair()
    sender = interfaces[0]

    sim.schedule(0.1, lambda: sender.send(None, 200, kind="beacon"))

    def degrade() -> None:
        environment.extra_loss_probability = 1.0

    def restore() -> None:
        environment.extra_loss_probability = 0.0

    sim.schedule(0.2, degrade)
    sim.schedule(0.3, lambda: sender.send(None, 200, kind="beacon"))
    sim.schedule(0.4, restore)
    sim.schedule(0.5, lambda: sender.send(None, 200, kind="beacon"))
    sim.run(until=1.0)

    before = [r for r in received if r[0] < 0.2]
    during = [r for r in received if 0.3 <= r[0] < 0.4]
    after = [r for r in received if r[0] >= 0.5]
    # extra_loss_probability is read live per broadcast (not baked into the
    # cached plan), so a certain-loss burst must drop exactly the frames sent
    # inside the window and nothing afterwards.
    assert len(before) == 1
    assert during == []
    assert len(after) == 1
    assert after[0][2] == before[0][2]
    assert sim.monitor.counter_value("radio.frames_lost") == 1

"""Snapshots taken *inside* fault windows restore without drift.

The nastiest checkpoint states are mid-burst: a radio degradation or loss
burst is in progress (non-empty injector stacks, a pending restore event in
the queue), nodes are crashed with recovery events armed, adversary
assignments are live.  These tests cut exactly there and require the
restored run to match the uninterrupted one byte for byte.
"""

import os
import tempfile

import pytest

from repro.faults.schedule import LOSS_END, LOSS_START, RADIO_DEGRADE, RADIO_RESTORE
from repro.scenarios import build_scenario
from repro.scenarios.base import Scenario
from repro.snapshot import DeliveredFrameLog, scenario_fingerprint

DURATION = 12.0

# High burst rates so windows reliably exist inside a short run (at the
# default rates a 12 s window frequently draws zero bursts).
BURSTY = dict(
    crash_rate=0.08,
    mean_downtime=2.0,
    radio_degradation=6.0,
    loss_burst_rate=0.4,
    malicious_fraction=0.3,
    adversary_profile="mixed",
)


# Seed 8 arms both a degradation and a loss window well inside DURATION.
def _build(seed=8):
    return build_scenario("urban-grid", n=6, seed=seed, **BURSTY)


_END_OF = {RADIO_DEGRADE: RADIO_RESTORE, LOSS_START: LOSS_END}


def _first_window_midpoint(scenario, kind):
    """Sim time halfway through the first armed burst window of ``kind``."""
    schedule = scenario._fault_schedule
    names = [node.name for node in scenario.nodes]
    events = schedule.timeline(names, start=0.0, duration=DURATION)
    starts = [e.time for e in events if e.kind == kind]
    ends = [e.time for e in events if e.kind == _END_OF[kind]]
    assert starts, f"no {kind} window armed; pick a different seed"
    start = starts[0]
    end = min((t for t in ends if t > start), default=DURATION)
    return min(start + 0.5 * (end - start), DURATION - 0.1)


def _round_trip(scenario, cut):
    handle, path = tempfile.mkstemp(suffix=".reprosnap")
    os.close(handle)
    try:
        scenario.run(DURATION, snapshot_at=cut, snapshot_to=path)
        return Scenario.restore(path)
    finally:
        os.unlink(path)


@pytest.mark.parametrize("kind", [RADIO_DEGRADE, LOSS_START])
def test_snapshot_inside_burst_window_is_byte_identical(kind):
    reference = _build()
    ref_log = DeliveredFrameLog().attach(reference)
    ref_report = reference.run(DURATION)

    scenario = _build()
    DeliveredFrameLog().attach(scenario)
    cut = _first_window_midpoint(scenario, kind)
    restored = _round_trip(scenario, cut)

    # The cut really was inside a window: the restored injector carries the
    # in-progress burst on its stack at the moment of restore *before*
    # resuming would pop it.
    stacks = restored.faults.capture_state()
    assert stacks["noise_stack"] or stacks["loss_stack"]

    report = restored.resume()
    assert DeliveredFrameLog.find(restored).records == ref_log.records
    assert report.as_dict() == ref_report.as_dict()
    assert scenario_fingerprint(restored) == scenario_fingerprint(reference)


def test_adversary_profiles_survive_restore():
    scenario = _build()
    assigned = dict(scenario.faults.capture_state()["assignment"])
    assert assigned, "malicious_fraction should assign adversaries"
    restored = _round_trip(scenario, cut=5.0)
    assert dict(restored.faults.capture_state()["assignment"]) == assigned
    assert restored.faults.malicious_names == scenario.faults.malicious_names
    # Malicious behaviour keeps running after restore: the resumed report
    # matches an uninterrupted adversarial run exactly (fingerprint includes
    # per-node trust scores shaped by the adversaries).
    reference = _build()
    ref_report = reference.run(DURATION)
    report = restored.resume()
    assert report.as_dict() == ref_report.as_dict()
    assert scenario_fingerprint(restored) == scenario_fingerprint(reference)


def test_crash_recovery_sequence_unchanged_across_restore():
    reference = _build(seed=23)
    ref_report = reference.run(DURATION)
    ref_state = reference.faults.capture_state()
    assert ref_state["crashes_injected"] > 0, "crash_rate should crash someone"

    scenario = _build(seed=23)
    restored = _round_trip(scenario, cut=4.0)
    report = restored.resume()
    state = restored.faults.capture_state()
    assert state["crashes_injected"] == ref_state["crashes_injected"]
    assert state["recoveries_injected"] == ref_state["recoveries_injected"]
    assert state["down_since"] == ref_state["down_since"]
    assert state["downtime_total"] == ref_state["downtime_total"]
    assert report.as_dict() == ref_report.as_dict()


def test_crashed_node_restores_crashed_and_recovers_on_schedule():
    scenario = _build(seed=23)
    # Find a cut while at least one node is down in the reference timeline.
    schedule = scenario._fault_schedule
    names = [node.name for node in scenario.nodes]
    events = schedule.timeline(names, start=0.0, duration=DURATION)
    crashes = [e for e in events if e.kind == "crash"]
    assert crashes
    first = crashes[0]
    recover = min(
        (e.time for e in events if e.kind == "recover" and e.node == first.node),
        default=DURATION,
    )
    cut = min(first.time + 0.5 * (recover - first.time), DURATION - 0.1)

    restored = _round_trip(scenario, cut)
    down = [node for node in restored.nodes if node.name == first.node]
    assert down and down[0].capture_state()["crashed"]

    reference = _build(seed=23)
    ref_report = reference.run(DURATION)
    report = restored.resume()
    # The node came back on schedule after restore.
    recovered = [node for node in restored.nodes if node.name == first.node]
    if recover < DURATION:
        assert not recovered[0].capture_state()["crashed"]
    assert report.as_dict() == ref_report.as_dict()

"""The determinism contract: a null schedule is byte-invisible.

Benchmark E14 asserts this at fleet scale; this unit test keeps the same
contract in the tier-1 suite with a small fleet, so a regression is caught
in seconds rather than in the benchmark run.
"""

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.api import AirDnDNode
from repro.faults import FaultInjector, null_schedule
from repro.geometry.vector import Vec2
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator

DURATION_S = 5.0


def run_fleet(with_null_injector: bool, seed: int = 77):
    sim = Simulator(seed=seed)
    environment = RadioEnvironment(sim, LinkBudget())
    registry = FunctionRegistry()
    registry.register(
        FunctionDefinition("answer", lambda p, d: 42, lambda p: 5e7, result_size_bytes=300)
    )
    log = []
    nodes = []
    for index in range(4):
        mobile = StaticNode(sim, Vec2(index * 45.0, 0.0), name=f"n-{index}")
        node = AirDnDNode(sim, environment, mobile, registry)
        receiver = node.name
        # frame_id is excluded: it comes from a process-global counter, so
        # it differs between two runs in one process without saying anything
        # about the delivered-frame sequence.
        node.mesh.interface.on_receive(
            lambda frame, quality, receiver=receiver: log.append(
                (sim.now, frame.sender, receiver,
                 quality.snr_db, quality.rate_bps)
            )
        )
        nodes.append(node)
    if with_null_injector:
        injector = FaultInjector(sim, nodes, environment=environment)
        assert injector.arm(null_schedule(seed), start=0.0, duration=DURATION_S) == 0
    sim.schedule(1.0, lambda: nodes[0].submit_function("answer"))
    sim.run(until=DURATION_S)
    counters = {
        name: sim.monitor.counter_value(name)
        for name in (
            "radio.frames_delivered",
            "radio.frames_lost",
            "radio.frames_out_of_range",
            "radio.bytes_delivered",
        )
    }
    return log, counters


def test_null_injector_runs_are_byte_identical():
    reference_log, reference_counters = run_fleet(with_null_injector=False)
    null_log, null_counters = run_fleet(with_null_injector=True)
    assert reference_counters["radio.frames_delivered"] > 0
    assert null_counters == reference_counters
    assert null_log == reference_log

"""Tests for the deterministic fault schedule (`repro.faults.schedule`)."""

import pytest

from repro.faults.schedule import (
    CRASH,
    FaultKnobs,
    FaultSchedule,
    LOSS_END,
    LOSS_START,
    RADIO_DEGRADE,
    RADIO_RESTORE,
    RECOVER,
    null_schedule,
)

NAMES = [f"car-{i}" for i in range(8)]


def churny_knobs(**overrides):
    defaults = dict(
        crash_rate=0.05,
        mean_downtime=2.0,
        radio_degradation=6.0,
        loss_burst_rate=0.1,
        malicious_fraction=0.25,
    )
    defaults.update(overrides)
    return FaultKnobs(**defaults)


def test_null_knobs_expand_to_nothing():
    schedule = null_schedule(seed=7)
    assert schedule.knobs.is_null
    assert schedule.timeline(NAMES, start=0.0, duration=100.0) == []
    assert schedule.adversary_assignment(NAMES) == {}


def test_timeline_is_pure_function_of_seed_and_knobs():
    a = FaultSchedule(churny_knobs(), seed=3).timeline(NAMES, 0.0, 60.0)
    b = FaultSchedule(churny_knobs(), seed=3).timeline(NAMES, 0.0, 60.0)
    assert a == b
    assert a  # nonzero knobs over a long window actually produce events
    different = FaultSchedule(churny_knobs(), seed=4).timeline(NAMES, 0.0, 60.0)
    assert different != a


def test_timeline_sorted_and_crashes_pair_with_recoveries():
    events = FaultSchedule(churny_knobs(), seed=9).timeline(NAMES, 0.0, 120.0)
    times = [event.time for event in events]
    assert times == sorted(times)
    down = set()
    recover_after_end = 0
    for event in sorted(events, key=lambda e: (e.time,)):
        if event.kind == CRASH:
            assert event.node not in down  # no double crash
            assert 0.0 <= event.time < 120.0
            down.add(event.node)
        elif event.kind == RECOVER:
            if event.node in down:
                down.remove(event.node)
            if event.time >= 120.0:
                recover_after_end += 1
    # Every in-window crash has a recovery somewhere (possibly past the end).
    assert not down or recover_after_end >= len(down)


def test_per_node_streams_are_independent_of_fleet_composition():
    schedule = FaultSchedule(churny_knobs(), seed=5)
    full = schedule.timeline(NAMES, 0.0, 90.0)
    subset = schedule.timeline(NAMES[:3], 0.0, 90.0)
    per_node_full = [e for e in full if e.node == "car-1"]
    per_node_subset = [e for e in subset if e.node == "car-1"]
    assert per_node_full == per_node_subset


def test_burst_events_carry_magnitude_on_start_and_end():
    events = FaultSchedule(churny_knobs(), seed=2).timeline(NAMES, 0.0, 200.0)
    for kind, magnitude in (
        (RADIO_DEGRADE, 6.0),
        (RADIO_RESTORE, 6.0),
        (LOSS_START, 0.5),
        (LOSS_END, 0.5),
    ):
        matching = [e for e in events if e.kind == kind]
        assert matching, kind
        assert all(e.magnitude == magnitude for e in matching)


def test_adversary_assignment_is_seeded_and_respects_fraction():
    schedule = FaultSchedule(churny_knobs(malicious_fraction=0.25), seed=11)
    assignment = schedule.adversary_assignment(NAMES)
    assert assignment == schedule.adversary_assignment(NAMES)
    assert len(assignment) == 2  # round(0.25 * 8)
    assert all(profile == "liar" for profile in assignment.values())
    assert set(assignment) <= set(NAMES)
    # Name order must not matter.
    assert schedule.adversary_assignment(list(reversed(NAMES))) == assignment


def test_mixed_profile_cycles_through_registry():
    schedule = FaultSchedule(
        churny_knobs(malicious_fraction=1.0, adversary_profile="mixed"), seed=1
    )
    assignment = schedule.adversary_assignment(NAMES)
    assert len(assignment) == len(NAMES)
    assert {"liar", "free_rider", "inflator"} == set(assignment.values())


@pytest.mark.parametrize(
    "bad",
    [
        dict(crash_rate=-0.1),
        dict(mean_downtime=0.0),
        dict(radio_degradation=-1.0),
        dict(malicious_fraction=1.5),
        dict(malicious_fraction=-0.1),
        dict(adversary_profile="nope"),
        dict(loss_burst_rate=-1.0),
        dict(loss_burst_probability=2.0),
        dict(degradation_duration=0.0),
        dict(loss_burst_duration=-1.0),
    ],
)
def test_knob_validation_fails_fast(bad):
    with pytest.raises(ValueError):
        FaultKnobs(**bad)


def test_timeline_rejects_nonpositive_duration():
    with pytest.raises(ValueError):
        FaultSchedule(churny_knobs(), seed=0).timeline(NAMES, 0.0, 0.0)

"""The docs layer stays healthy: links resolve, the CLI help works.

This mirrors the CI docs job so a broken README link or a CLI regression
fails the tier-1 suite locally, not just on the runner.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_links.py"


def test_docs_exist():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "EXPERIMENTS.md").is_file()


def test_relative_links_resolve():
    result = subprocess.run(
        [sys.executable, str(CHECKER), "README.md", "docs"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_link_checker_flags_broken_links(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "[ok](real.md) [bad](missing.md) [ext](https://example.com) [anchor](#x)"
    )
    (tmp_path / "real.md").write_text("hi")
    result = subprocess.run(
        [sys.executable, str(CHECKER), str(page)],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 1
    assert "missing.md" in result.stdout
    assert "real.md" not in result.stdout
    assert "example.com" not in result.stdout


@pytest.mark.parametrize("argv", [["--help"], ["sweep", "--help"]])
def test_cli_help_exits_zero(argv):
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 0

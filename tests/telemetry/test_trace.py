"""Unit tests for the dual-clock Chrome trace-event recorder."""

import json

import pytest

from repro.telemetry.trace import (
    TRACE_SCHEMA,
    Tracer,
    activate,
    current_tracer,
    deactivate,
)


class FakeClock:
    """A deterministic wall clock advanced by hand."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


def test_sample_every_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(sample_every=0)
    with pytest.raises(ValueError):
        Tracer(sample_every=-3)


def test_span_is_dual_clocked():
    clock = FakeClock(start=100.0)
    tracer = Tracer(clock=clock)
    clock.now = 100.5
    start = tracer.clock()
    clock.now = 100.75
    tracer.span("step", "sim", start, sim_time=12.5, args={"events": 3})
    (event,) = tracer.events
    assert event["ph"] == "X"
    assert event["name"] == "step"
    assert event["cat"] == "sim"
    # Wall clock: ts is µs since tracer construction, dur is the bracket.
    assert event["ts"] == pytest.approx(0.5e6)
    assert event["dur"] == pytest.approx(0.25e6)
    # Sim clock travels in args alongside the caller's payload.
    assert event["args"] == {"events": 3, "sim_time": 12.5}


def test_span_duration_clamped_non_negative():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    start = clock.now + 5.0  # a start "after" the end must not go negative
    tracer.span("weird", "sim", start)
    assert tracer.events[0]["dur"] == 0.0


def test_instant_marker():
    tracer = Tracer(clock=FakeClock())
    tracer.instant("window_open", "scenario", sim_time=0.0, args={"duration": 5.0})
    (event,) = tracer.events
    assert event["ph"] == "i"
    assert event["s"] == "t"
    assert event["args"] == {"duration": 5.0, "sim_time": 0.0}


def test_sampling_is_per_name_modulo():
    tracer = Tracer(sample_every=3, clock=FakeClock())
    for _ in range(7):
        tracer.instant("tick", "sim")
    for _ in range(2):
        tracer.instant("other", "sim")
    ticks = [e for e in tracer.events if e["name"] == "tick"]
    others = [e for e in tracer.events if e["name"] == "other"]
    # Records 0, 3 and 6 of "tick"; record 0 of "other" — independent keys.
    assert len(ticks) == 3
    assert len(others) == 1
    assert tracer.dropped == 5
    assert len(tracer) == 4


def test_activation_nests_and_restores():
    assert current_tracer() is None
    outer, inner = Tracer(), Tracer()
    with activate(outer):
        assert current_tracer() is outer
        with activate(inner):
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is None


def test_deactivate_forces_off():
    tracer = Tracer()
    with activate(tracer):
        deactivate()
        assert current_tracer() is None
    # The context manager restores its remembered previous value (None).
    assert current_tracer() is None


def test_to_chrome_document_shape():
    tracer = Tracer(sample_every=2, clock=FakeClock())
    for _ in range(5):
        tracer.instant("tick", "sim")
    doc = tracer.to_chrome()
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"] == {
        "schema": TRACE_SCHEMA,
        "sample_every": 2,
        "dropped": 2,
    }
    assert len(doc["traceEvents"]) == 3


def test_save_writes_loadable_json(tmp_path):
    tracer = Tracer(clock=FakeClock())
    tracer.instant("tick", "sim")
    path = tmp_path / "nested" / "run.trace.json"  # save() creates parents
    count = tracer.save(str(path))
    assert count == 1
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    assert doc["otherData"]["schema"] == TRACE_SCHEMA
    assert doc["traceEvents"][0]["name"] == "tick"

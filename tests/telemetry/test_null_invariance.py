"""The telemetry zero-perturbation contract, certified at scenario level.

Benchmark E19 asserts this at N=1000 fleet scale; this suite keeps the same
contract in the tier-1 suite with small fleets, so a regression — a tracer
that draws RNG, a metrics render that creates a metric inside the sim — is
caught in seconds, across every scenario, both equivalence tiers, and an
*active* fault window (crashes firing, adversaries lying).

Each case runs the identical piecewise window drive twice: once plain, once
inside ``activate(Tracer())`` with a Prometheus render after every slice
(the heaviest realistic observation load — a scraper hitting the endpoint
mid-step).  The delivered-frame sequence, the report, and the post-run RNG
stream states must be byte-identical.
"""

import json

import pytest

from repro.scenarios import build_scenario
from repro.snapshot.verify import DeliveredFrameLog
from repro.telemetry.prometheus import monitor_points, render_exposition
from repro.telemetry.trace import Tracer, activate, current_tracer

DURATION_S = 4.0
SEED = 11

#: An *active* fault window: with n=4–6 nodes, crash_rate=0.2 schedules real
#: downtime and malicious_fraction=0.25 assigns at least one adversary, so
#: invariance is proven while the injector is actually doing things.
FAULT_KNOBS = {"crash_rate": 0.2, "malicious_fraction": 0.25}


def drive(name: str, fast_math: bool, traced: bool):
    """One full scenario window, driven in bounded slices.

    Both arms (traced and plain) drive the window identically — the *only*
    difference is whether a tracer is active and metrics are rendered —
    so any divergence is attributable to the telemetry layer alone.
    """
    scenario = build_scenario(
        name, n=4, seed=SEED, fast_math=fast_math, **FAULT_KNOBS
    )
    log = DeliveredFrameLog().attach(scenario)

    def run_window():
        scenario.open_window(DURATION_S)
        while True:
            outcome = scenario.advance(max_events=64)
            if traced:
                # A scrape between every slice: rendering walks the live
                # monitor and must create nothing inside it.
                render_exposition(
                    monitor_points(scenario.sim.monitor, {"scenario": name})
                )
            if outcome.exhausted:
                break
        return scenario.close_window()

    if traced:
        tracer = Tracer()
        with activate(tracer):
            report = run_window()
        trace_names = {event["name"] for event in tracer.events}
    else:
        report = run_window()
        trace_names = set()
    rng_state = scenario.sim.streams.capture_state()
    # json round-trip: NaN report fields compare equal as the token "NaN".
    return log.records, json.dumps(report.as_dict(), sort_keys=True), rng_state, trace_names


@pytest.mark.parametrize("fast_math", [False, True], ids=["exact", "statistical"])
@pytest.mark.parametrize("name", ["intersection", "urban-grid", "highway"])
def test_tracing_and_metrics_are_byte_invisible(name, fast_math):
    plain_log, plain_report, plain_rng, _ = drive(name, fast_math, traced=False)
    traced_log, traced_report, traced_rng, spans = drive(name, fast_math, traced=True)
    # The traced arm really traced: the window hooks and the event-core
    # dispatch hook all fired.
    assert {"window_open", "window_advance", "window_close"} <= spans
    assert "dispatch_batch" in spans
    # The run did real work, so the equality below is not vacuous.
    assert plain_log
    # ... and was byte-invisible.
    assert traced_log == plain_log
    assert traced_report == plain_report
    assert traced_rng == plain_rng


def test_tracer_never_leaks_out_of_activation():
    assert current_tracer() is None
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with activate(tracer):
            assert current_tracer() is tracer
            raise RuntimeError("boom")
    assert current_tracer() is None

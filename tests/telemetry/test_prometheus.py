"""Unit tests for the Prometheus exposition renderer and its bridges."""

import math

import pytest

from repro.service.app import create_app
from repro.service.testing import ASGITestClient
from repro.simcore.monitor import Monitor
from repro.telemetry.prometheus import (
    CONTENT_TYPE,
    HistogramPoint,
    TelemetryRegistry,
    escape_label_value,
    format_value,
    histogram_from_values,
    monitor_points,
    point,
    render_exposition,
    sanitize_metric_name,
)

from tests.telemetry.test_check_metrics import check_exposition


# ----------------------------------------------------------------- primitives


def test_sanitize_metric_name():
    assert sanitize_metric_name("radio.frames_delivered") == (
        "repro_radio_frames_delivered"
    )
    assert sanitize_metric_name("weird-name!x") == "repro_weird_name_x"
    assert sanitize_metric_name("x", namespace="") == "x"


def test_escape_label_value():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_format_value():
    assert format_value(3.0) == "3"
    assert format_value(3.5) == "3.5"
    assert format_value(float("nan")) == "NaN"
    assert format_value(float("inf")) == "+Inf"
    assert format_value(float("-inf")) == "-Inf"
    assert format_value(1e18) == repr(1e18)  # too big to collapse to int


# ------------------------------------------------------------------ rendering


def test_counter_gets_total_suffix_and_sorted_families():
    text = render_exposition(
        [
            point("z.last", "gauge", 1.0),
            point("a.first", "counter", 2.0, help="help text"),
        ]
    )
    lines = text.splitlines()
    assert lines[0] == "# HELP repro_a_first_total help text"
    assert lines[1] == "# TYPE repro_a_first_total counter"
    assert lines[2] == "repro_a_first_total 2"
    assert lines[-1] == "repro_z_last 1"
    assert text.endswith("\n")
    assert check_exposition(text) == []


def test_label_values_escaped_in_output():
    text = render_exposition(
        [point("m", "gauge", 1.0, labels={"scenario": 'ur"ban\ngrid'})]
    )
    assert 'scenario="ur\\"ban\\ngrid"' in text
    assert check_exposition(text) == []


def test_kind_conflict_raises():
    with pytest.raises(ValueError, match="claimed as both"):
        render_exposition(
            [point("m_total", "counter", 1.0), point("m_total", "gauge", 2.0)]
        )


def test_duplicate_sample_raises():
    with pytest.raises(ValueError, match="duplicate sample"):
        render_exposition(
            [
                point("m", "gauge", 1.0, labels={"a": "x"}),
                point("m", "gauge", 2.0, labels={"a": "x"}),
            ]
        )


def test_histogram_rendering_is_cumulative_with_inf():
    histogram = histogram_from_values(
        "lat", [0.004, 0.02, 0.02, 9.0, 100.0], help="latencies"
    )
    assert isinstance(histogram, HistogramPoint)
    text = render_exposition([histogram])
    lines = text.splitlines()
    assert 'repro_lat_bucket{le="0.005"} 1' in lines
    assert 'repro_lat_bucket{le="0.025"} 3' in lines
    assert 'repro_lat_bucket{le="10"} 4' in lines
    assert 'repro_lat_bucket{le="+Inf"} 5' in lines
    assert "repro_lat_count 5" in lines
    assert check_exposition(text) == []


def test_point_rejects_unknown_kind():
    with pytest.raises(ValueError, match="counter/gauge"):
        point("m", "histogram", 1.0)


# -------------------------------------------------------------- monitor bridge


def test_monitor_points_covers_every_metric_kind():
    monitor = Monitor()
    monitor.counter("radio.frames").add(3)
    monitor.gauge("queue.depth").set(7.0)
    monitor.timeseries("cpu.load").record(0.0, 0.25)
    monitor.timeseries("cpu.load").record(1.0, 0.75)
    monitor.sample("task.latency").add(0.1)
    monitor.sample("task.latency").add(0.3)
    monitor.sample("empty.series")  # zero observations: not exported

    points = monitor_points(monitor, {"scenario": "urban-grid"})
    by_name = {p.name: p for p in points}
    assert by_name["radio.frames"].kind == "counter"
    assert by_name["radio.frames"].value == 3
    assert by_name["queue.depth"].kind == "gauge"
    assert by_name["queue.depth"].value == 7.0
    assert by_name["cpu.load"].kind == "gauge"
    assert by_name["cpu.load"].value == 0.75  # last value
    assert by_name["task.latency"].kind == "histogram"
    assert by_name["task.latency"].count == 2
    assert "empty.series" not in by_name
    assert all(p.labels == (("scenario", "urban-grid"),) for p in points)
    assert check_exposition(render_exposition(points)) == []


def test_monitor_points_is_read_only():
    monitor = Monitor()
    monitor.counter("a").add()
    before = monitor.summary()
    monitor_points(monitor)
    assert monitor.summary() == before


def test_registry_drops_vanished_monitors():
    registry = TelemetryRegistry()
    box = {"monitor": Monitor()}
    box["monitor"].counter("live").add()
    registry.add_monitor(lambda: box["monitor"], {"session_id": "s1"})
    registry.add_producer(lambda: [point("extra", "gauge", 1.0)])
    assert "repro_live_total" in registry.render()
    box["monitor"] = None  # session evicted between scrapes
    text = registry.render()
    assert "repro_live_total" not in text
    assert "repro_extra 1" in text


# ------------------------------------------------------------ service /metrics


def _create(client, **overrides):
    payload = {
        "scenario": "urban-grid",
        "n": 4,
        "seed": 0,
        "duration": 5.0,
        "step_slice": 100,
    }
    payload.update(overrides)
    response = client.post("/sessions", payload)
    assert response.status == 201, response.body
    return response.json()["id"]


def test_service_metrics_aggregates_concurrent_sessions():
    with ASGITestClient(create_app(auto_drive=False)) as client:
        first = _create(client)
        second = _create(
            client, scenario="intersection", seed=1, knobs={"fast_math": True}
        )
        for session_id in (first, second):
            client.post(f"/sessions/{session_id}/start")
            client.post(f"/sessions/{session_id}/step")
        response = client.get("/metrics")
        assert response.status == 200
        assert response.headers["content-type"] == CONTENT_TYPE
        text = response.body.decode("utf-8")
        assert check_exposition(text) == []
        # Both sessions contribute, each under its own label set.
        assert f'session_id="{first}"' in text
        assert f'session_id="{second}"' in text
        assert 'scenario="urban_grid"' in text
        assert 'scenario="intersection"' in text
        assert 'tier="exact"' in text
        assert 'tier="statistical"' in text
        # Service-level families ride along.
        assert 'repro_service_sessions{state="running"} 2' in text
        assert "repro_service_scheduler_passes_total" in text


def test_service_metrics_excludes_evicted_sessions():
    with ASGITestClient(create_app(auto_drive=False)) as client:
        session_id = _create(client)
        client.post(f"/sessions/{session_id}/start")
        client.post(f"/sessions/{session_id}/step")
        client.post(f"/sessions/{session_id}/pause")
        assert client.post(f"/sessions/{session_id}/evict").status == 200
        text = client.get("/metrics").body.decode("utf-8")
        assert f'session_id="{session_id}"' not in text
        assert 'repro_service_sessions{state="evicted"} 1' in text
        assert check_exposition(text) == []

"""Tests for the exposition validator ``tools/check_metrics.py``.

The tool lives outside the package (it must run standalone in CI with no
PYTHONPATH), so it is loaded here by file path; the re-exported
:func:`check_exposition` is also what the renderer tests use to prove the
renderer and the validator agree.
"""

import importlib.util
import pathlib

_TOOL = pathlib.Path(__file__).resolve().parents[2] / "tools" / "check_metrics.py"
_spec = importlib.util.spec_from_file_location("check_metrics", _TOOL)
check_metrics = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_metrics)

check_exposition = check_metrics.check_exposition

VALID = """\
# HELP repro_tasks_total Completed tasks
# TYPE repro_tasks_total counter
repro_tasks_total{scenario="urban-grid"} 5
repro_tasks_total{scenario="highway"} 2
# TYPE repro_queue_depth gauge
repro_queue_depth NaN
# TYPE repro_latency histogram
repro_latency_bucket{le="0.1"} 1
repro_latency_bucket{le="1"} 3
repro_latency_bucket{le="+Inf"} 4
repro_latency_sum 2.5
repro_latency_count 4
"""


def test_valid_document_passes():
    assert check_exposition(VALID) == []


def test_counter_must_end_in_total():
    text = "# TYPE repro_tasks counter\nrepro_tasks 5\n"
    errors = check_exposition(text)
    assert any("_total" in error for error in errors)


def test_sample_before_type_flagged():
    errors = check_exposition("repro_mystery 1\n")
    assert any("no preceding TYPE" in error for error in errors)


def test_duplicate_sample_flagged():
    text = (
        "# TYPE repro_x gauge\n"
        'repro_x{a="1"} 1\n'
        'repro_x{a="1"} 2\n'
    )
    errors = check_exposition(text)
    assert any("duplicate sample" in error for error in errors)


def test_duplicate_detection_ignores_label_order():
    text = (
        "# TYPE repro_x gauge\n"
        'repro_x{a="1",b="2"} 1\n'
        'repro_x{b="2",a="1"} 2\n'
    )
    errors = check_exposition(text)
    assert any("duplicate sample" in error for error in errors)


def test_bad_label_block_flagged():
    errors = check_exposition('# TYPE repro_x gauge\nrepro_x{a=unquoted} 1\n')
    assert any("bad label block" in error for error in errors)


def test_bad_value_flagged():
    errors = check_exposition("# TYPE repro_x gauge\nrepro_x five\n")
    assert any("bad value" in error for error in errors)


def test_decreasing_histogram_buckets_flagged():
    text = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1"} 5\n'
        'repro_h_bucket{le="2"} 3\n'
        'repro_h_bucket{le="+Inf"} 5\n'
        "repro_h_sum 1\n"
        "repro_h_count 5\n"
    )
    errors = check_exposition(text)
    assert any("decrease" in error for error in errors)


def test_missing_inf_bucket_flagged():
    text = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1"} 5\n'
        "repro_h_sum 1\n"
        "repro_h_count 5\n"
    )
    errors = check_exposition(text)
    assert any("+Inf" in error for error in errors)


def test_inf_bucket_must_match_count():
    text = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="+Inf"} 4\n'
        "repro_h_sum 1\n"
        "repro_h_count 5\n"
    )
    errors = check_exposition(text)
    assert any("!= " in error or "!=" in error for error in errors)


def test_missing_sum_and_count_flagged():
    text = "# TYPE repro_h histogram\n" 'repro_h_bucket{le="+Inf"} 0\n'
    errors = check_exposition(text)
    assert any("missing _count" in error for error in errors)
    assert any("missing _sum" in error for error in errors)


def test_duplicate_type_line_flagged():
    text = "# TYPE repro_x gauge\n# TYPE repro_x gauge\nrepro_x 1\n"
    errors = check_exposition(text)
    assert any("duplicate TYPE" in error for error in errors)


def test_main_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.prom"
    good.write_text(VALID, encoding="utf-8")
    assert check_metrics.main([str(good)]) == 0
    assert "OK (3 families)" in capsys.readouterr().out

    bad = tmp_path / "bad.prom"
    bad.write_text("repro_mystery 1\n", encoding="utf-8")
    assert check_metrics.main([str(bad)]) == 1
    assert check_metrics.main([str(tmp_path / "missing.prom")]) == 2
    assert check_metrics.main([]) == 2

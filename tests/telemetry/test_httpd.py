"""Tests for the stdlib metrics sidecar server."""

import urllib.error
import urllib.request

import pytest

from repro.telemetry.httpd import MetricsServer
from repro.telemetry.prometheus import CONTENT_TYPE, point, render_exposition


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, dict(response.headers), response.read()


def test_serves_fresh_render_per_scrape():
    state = {"value": 1.0}

    def render() -> str:
        return render_exposition([point("live", "gauge", state["value"])])

    with MetricsServer(render) as server:
        url = f"http://{server.host}:{server.port}/metrics"
        status, headers, body = _get(url)
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert b"repro_live 1" in body
        state["value"] = 2.0  # pull-based: the next scrape sees new state
        assert b"repro_live 2" in _get(url)[2]


def test_non_metrics_paths_404():
    with MetricsServer(lambda: "") as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"http://{server.host}:{server.port}/other")
        assert excinfo.value.code == 404


def test_render_failure_returns_500():
    def render() -> str:
        raise RuntimeError("boom")

    with MetricsServer(render) as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"http://{server.host}:{server.port}/metrics")
        assert excinfo.value.code == 500

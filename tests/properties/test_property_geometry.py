"""Property-based tests for geometry primitives."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.spatial_index import SpatialGrid
from repro.geometry.vector import Vec2

# Subnormal doubles are excluded: dividing them loses precision in ways that
# say nothing about the geometry code under test.
coords = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False,
    allow_subnormal=False,
)
vectors = st.builds(Vec2, coords, coords)


@given(vectors, vectors)
def test_distance_is_symmetric(a, b):
    assert a.distance_to(b) == b.distance_to(a)


@given(vectors, vectors, vectors)
def test_triangle_inequality(a, b, c):
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


@given(vectors)
def test_normalized_has_unit_length_or_zero(v):
    n = v.normalized()
    if v.length() == 0.0:
        assert n == Vec2(0.0, 0.0)
    else:
        assert math.isclose(n.length(), 1.0, rel_tol=1e-9, abs_tol=1e-9)


@given(vectors, st.floats(min_value=-math.pi, max_value=math.pi))
def test_rotation_preserves_length(v, angle):
    assert math.isclose(v.rotated(angle).length(), v.length(), rel_tol=1e-9, abs_tol=1e-6)


@given(vectors, vectors, st.floats(min_value=0.0, max_value=1.0))
def test_lerp_stays_between_endpoints(a, b, t):
    point = a.lerp(b, t)
    # The interpolated point is never farther from either endpoint than the
    # endpoints are from each other.
    separation = a.distance_to(b)
    assert point.distance_to(a) <= separation + 1e-6
    assert point.distance_to(b) <= separation + 1e-6


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=200), coords, coords),
        min_size=1,
        max_size=40,
        unique_by=lambda item: item[0],
    ),
    coords,
    coords,
    st.floats(min_value=1.0, max_value=500.0),
)
def test_spatial_grid_matches_brute_force(items, qx, qy, radius):
    grid = SpatialGrid(cell_size=75.0)
    positions = {}
    for key, x, y in items:
        position = Vec2(x, y)
        grid.update(key, position)
        positions[key] = position
    center = Vec2(qx, qy)
    # Points exactly on the radius boundary can fall either way depending on
    # floating-point rounding; only points clearly inside/outside must agree
    # with the brute-force answer.
    clearly_inside = {
        key for key, p in positions.items() if p.distance_to(center) <= radius - 1e-6
    }
    clearly_outside = {
        key for key, p in positions.items() if p.distance_to(center) > radius + 1e-6
    }
    found = set(grid.query_range(center, radius))
    assert clearly_inside <= found
    assert not (found & clearly_outside)

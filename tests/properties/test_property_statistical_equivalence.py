"""The statistical-equivalence contract of the ``fast_math`` tier.

The exact tier promises byte-identical delivered-frame sequences (pinned by
benchmarks E11/E13 and the bit-identity tests in ``tests/radio``).  The
statistical tier deliberately gives that up — numpy SIMD kernels differ from
scalar libm in the last ulp, which can flip individual RNG loss comparisons —
and promises something weaker instead: *per-run aggregate metrics agree with
the exact tier within seeded confidence intervals across a seed ensemble*.

This suite is that contract, plus the proof that the agreement check itself
is discriminating: a kernel with a deliberate +0.5 dB bias must be rejected
by the very same check that accepts the honest fast kernel (otherwise the
harness is a rubber stamp).
"""

from __future__ import annotations

import math
from typing import Dict

from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.metrics.statistics import agrees_within_ci, paired_difference_ci
from repro.mobility.manager import MobilityManager
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator

#: Seed ensemble the paired comparison runs over.  Ten seeds keeps the suite
#: fast while giving the CI enough pairs to reject a biased kernel.
SEEDS = range(100, 110)
N = 36
DURATION_S = 2.0
BEACON_PERIOD_S = 0.25
NODE_STEP_M = 55.0

#: Agreement tolerances on the per-run aggregates.  Delivery ratio and loss
#: rate are probabilities.  The latency tolerance is deliberately tight:
#: honest last-ulp kernel differences move the mean link delay at the
#: ~1e-20 s scale, while the +0.5 dB biased kernel of the discrimination
#: test moves it by ~2e-6 s — 1e-6 s sits between the two regimes.
TOLERANCES = {
    "delivery_ratio": 0.01,
    "loss_rate": 0.01,
    "mean_latency_s": 1e-6,
}


def run_aggregates(seed: int, **budget_kwargs) -> Dict[str, float]:
    """Per-run aggregate metrics of one seeded beacon-fleet run.

    A small static lattice with one occluding building (so NLOS geometry is
    exercised on both tiers), beaconing for ``DURATION_S`` sim-seconds.
    """
    sim = Simulator(seed=seed)
    mobility = MobilityManager(sim, tick=0.5, cell_size=150.0)
    side = max(1, math.ceil(math.sqrt(N)))
    visibility = VisibilityMap(
        [Rectangle(70.0, 70.0, 160.0, 160.0)]
    )
    environment = RadioEnvironment(
        sim,
        LinkBudget(**budget_kwargs),
        visibility=visibility,
        mobility=mobility,
    )
    for index in range(N):
        position = Vec2(
            (index % side) * NODE_STEP_M, (index // side) * NODE_STEP_M
        )
        node = StaticNode(sim, position, name=f"n-{index:03d}")
        mobility.add_node(node)
        interface = environment.attach(node.name, lambda node=node: node.position)
        BeaconAgent(
            sim,
            interface,
            state_provider=lambda node=node: (node.position, node.velocity),
            beacon_period=BEACON_PERIOD_S,
        )
    sim.run(until=DURATION_S)
    monitor = sim.monitor
    delivered = monitor.counter_value("radio.frames_delivered")
    lost = monitor.counter_value("radio.frames_lost")
    attempted = delivered + lost
    delays = monitor.sample("radio.link_delay").values
    return {
        "delivery_ratio": delivered / attempted if attempted else math.nan,
        "loss_rate": lost / attempted if attempted else math.nan,
        "mean_latency_s": sum(delays) / len(delays) if delays else math.nan,
    }


def ensemble(**budget_kwargs) -> Dict[str, list]:
    """The aggregate metrics of every seed in the ensemble, column-wise."""
    runs = [run_aggregates(seed, **budget_kwargs) for seed in SEEDS]
    return {metric: [run[metric] for run in runs] for metric in runs[0]}


def test_fast_tier_aggregates_agree_with_exact_tier():
    exact = ensemble(fast_math=False)
    fast = ensemble(fast_math=True)
    # The comparison must not be vacuous: frames were delivered and lost.
    assert all(0.0 < value < 1.0 for value in exact["delivery_ratio"])
    for metric, tolerance in TOLERANCES.items():
        assert agrees_within_ci(exact[metric], fast[metric], tolerance), (
            metric,
            paired_difference_ci(exact[metric], fast[metric]),
        )


def test_agreement_check_accepts_identity_kernel():
    """The exact tier trivially agrees with itself (same seeds, same code)."""
    exact = ensemble(fast_math=False)
    again = ensemble(fast_math=False)
    for metric, tolerance in TOLERANCES.items():
        assert exact[metric] == again[metric]
        assert agrees_within_ci(exact[metric], again[metric], tolerance)


def test_agreement_check_rejects_biased_kernel():
    """A +0.5 dB transmit-power bias must fail the same CI agreement check.

    The bias raises every link's SNR, which shifts the delivered-frame mix
    (farther receivers become usable) and every frame's serialization time —
    so at least one aggregate's paired-difference CI must land entirely
    outside its tolerance band.  This is the discrimination proof: the
    harness that certifies the honest fast kernel is capable of flunking a
    dishonest one.
    """
    exact = ensemble(fast_math=False)
    biased = ensemble(fast_math=True, tx_power_dbm=23.5)
    rejected = [
        metric
        for metric, tolerance in TOLERANCES.items()
        if not agrees_within_ci(exact[metric], biased[metric], tolerance)
    ]
    assert rejected, {
        metric: paired_difference_ci(exact[metric], biased[metric])
        for metric in TOLERANCES
    }
    # The latency shift is deterministic (every delivered frame serialises
    # faster at higher SNR), so it specifically must be among the rejections.
    assert "mean_latency_s" in rejected

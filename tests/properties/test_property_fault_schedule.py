"""Property tests: the fault schedule is a pure function of (seed, knobs).

The :mod:`repro.faults` determinism contract says any expansion — the event
timeline and the adversary assignment — depends on nothing but the seed, the
knobs and the requested window.  Randomised knobs and seeds hold it to that,
together with the structural invariants the injector relies on (sorted
events, in-window starts, per-node crash/recover alternation, magnitudes on
both ends of every burst).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.schedule import (
    CRASH,
    FaultKnobs,
    FaultSchedule,
    RECOVER,
    null_schedule,
)

NAMES = tuple(f"node-{i}" for i in range(6))

knob_sets = st.builds(
    FaultKnobs,
    crash_rate=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    mean_downtime=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    radio_degradation=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    malicious_fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    adversary_profile=st.sampled_from(["liar", "free_rider", "inflator", "mixed"]),
    loss_burst_rate=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
windows = st.tuples(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.5, max_value=60.0, allow_nan=False),
)


@settings(max_examples=60, deadline=None)
@given(knobs=knob_sets, seed=seeds, window=windows)
def test_expansion_is_deterministic_per_seed(knobs, seed, window):
    start, duration = window
    first = FaultSchedule(knobs, seed=seed)
    second = FaultSchedule(knobs, seed=seed)
    assert first.timeline(NAMES, start, duration) == second.timeline(
        NAMES, start, duration
    )
    assert first.adversary_assignment(NAMES) == second.adversary_assignment(NAMES)


@settings(max_examples=60, deadline=None)
@given(knobs=knob_sets, seed=seeds, window=windows)
def test_expansion_invariants(knobs, seed, window):
    start, duration = window
    events = FaultSchedule(knobs, seed=seed).timeline(NAMES, start, duration)
    end = start + duration
    times = [event.time for event in events]
    assert times == sorted(times)
    per_node = {name: [] for name in NAMES}
    for event in events:
        if event.kind in (CRASH, RECOVER):
            assert event.node in per_node
            per_node[event.node].append(event)
        if event.kind == CRASH:
            assert start <= event.time < end
    for sequence in per_node.values():
        # Crash and recover strictly alternate, starting with a crash, and
        # each recovery comes at or after its crash.
        kinds = [event.kind for event in sequence]
        assert kinds == [CRASH, RECOVER] * (len(kinds) // 2)
        for crash, recover in zip(sequence[::2], sequence[1::2]):
            assert recover.time >= crash.time


@settings(max_examples=40, deadline=None)
@given(knobs=knob_sets, seed=seeds)
def test_assignment_respects_fraction_and_registry(knobs, seed):
    assignment = FaultSchedule(knobs, seed=seed).adversary_assignment(NAMES)
    expected = int(knobs.malicious_fraction * len(NAMES) + 0.5)
    assert len(assignment) == expected
    assert set(assignment) <= set(NAMES)
    if knobs.adversary_profile != "mixed":
        assert set(assignment.values()) <= {knobs.adversary_profile}


@settings(max_examples=20, deadline=None)
@given(seed=seeds, window=windows)
def test_null_schedule_never_expands(seed, window):
    start, duration = window
    schedule = null_schedule(seed)
    assert schedule.timeline(NAMES, start, duration) == []
    assert schedule.adversary_assignment(NAMES) == {}

"""Property: interleaving sessions in arbitrary slices is unobservable.

The session engine multiplexes many simulations by stepping each one in
bounded event slices.  The contract: however two sessions' slices are
interleaved — alternating, lopsided, varying sizes — each session's fleet
delivered-frame sequence, final report and full state fingerprint are
byte-identical to running its scenario to completion in one undisturbed
``Scenario.run()`` call.  Quantified over scenario, seed, slice pattern,
equivalence tier (exact and fast_math) and fault activity; a deterministic
acceptance test pins the tier × faults matrix explicitly.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import build_scenario
from repro.service import SessionState, SimulationSession
from repro.snapshot import DeliveredFrameLog, scenario_fingerprint

DURATION = 6.0

FAULT_KNOBS = dict(
    crash_rate=0.05,
    radio_degradation=5.0,
    loss_burst_rate=0.15,
    malicious_fraction=0.25,
    adversary_profile="mixed",
)


def _build(scenario_name, seed, fast_math, faults):
    knobs = dict(n=4, seed=seed, fast_math=fast_math)
    if faults:
        knobs.update(FAULT_KNOBS)
    return build_scenario(scenario_name, **knobs)


def _solo(scenario_name, seed, fast_math, faults):
    scenario = _build(scenario_name, seed, fast_math, faults)
    log = DeliveredFrameLog().attach(scenario)
    report = scenario.run(DURATION)
    return log.records, report.as_dict(), scenario_fingerprint(scenario)


def _interleaved_pair(scenario_name, seeds, fast_math, faults, slices):
    """Two sessions stepped alternately with varying slice budgets."""
    sessions, logs = [], []
    for index, seed in enumerate(seeds):
        scenario = _build(scenario_name, seed, fast_math, faults)
        logs.append(DeliveredFrameLog().attach(scenario))
        session = SimulationSession(
            f"s{index}", scenario, duration=DURATION, step_slice=max(slices)
        )
        session.start()
        sessions.append(session)
    budgets = itertools.cycle(slices)
    while any(s.state is SessionState.RUNNING for s in sessions):
        for session in sessions:
            if session.state is SessionState.RUNNING:
                session.step(next(budgets))
    return [
        (log.records, session.report.as_dict(), scenario_fingerprint(session.scenario))
        for session, log in zip(sessions, logs)
    ]


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scenario_name=st.sampled_from(["highway", "urban-grid", "intersection"]),
    seed=st.integers(min_value=0, max_value=10_000),
    slices=st.lists(
        st.integers(min_value=1, max_value=300), min_size=1, max_size=5
    ),
    fast_math=st.booleans(),
    faults=st.booleans(),
)
def test_interleaved_sessions_are_byte_identical_to_solo_runs(
    scenario_name, seed, slices, fast_math, faults
):
    seeds = (seed, seed + 1)
    interleaved = _interleaved_pair(scenario_name, seeds, fast_math, faults, slices)
    for one_seed, (frames, report, fingerprint) in zip(seeds, interleaved):
        frames_solo, report_solo, fp_solo = _solo(
            scenario_name, one_seed, fast_math, faults
        )
        assert frames == frames_solo
        assert report == report_solo
        # Fingerprint equality covers clocks, queue bookkeeping, per-node
        # state and every named RNG stream's bit-generator state.
        assert fingerprint == fp_solo


@pytest.mark.parametrize("fast_math", [False, True], ids=["exact", "fast"])
@pytest.mark.parametrize("faults", [False, True], ids=["null", "faulty"])
def test_acceptance_matrix_interleaving_with_faults(fast_math, faults):
    """The ISSUE acceptance grid: both tiers, fault windows on and off."""
    seeds = (7, 8)
    interleaved = _interleaved_pair(
        "urban-grid", seeds, fast_math, faults, slices=[17, 160, 3]
    )
    for seed, (frames, report, fingerprint) in zip(seeds, interleaved):
        frames_solo, report_solo, fp_solo = _solo("urban-grid", seed, fast_math, faults)
        assert frames == frames_solo
        assert report == report_solo
        assert fingerprint == fp_solo

"""Property tests: indexed line-of-sight ≡ the brute-force obstacle scan.

The :class:`~repro.geometry.obstacle_index.ObstacleIndex` promises *exact*
equivalence with :func:`~repro.geometry.los.line_of_sight` for any ray, not
just typical ones.  Randomised obstacle fields and ray endpoints are the
cheap way to hold it to that — with the adversarial cases (rays along cell
boundaries, rays through cell corners, zero-length rays, endpoints on
obstacle boundaries) forced explicitly as well as left to chance.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.los import VisibilityMap, line_of_sight
from repro.geometry.obstacle_index import ObstacleIndex
from repro.geometry.shapes import Polygon, Rectangle
from repro.geometry.vector import Vec2

CELL = 20.0

coords = st.floats(
    min_value=-200.0, max_value=200.0, allow_nan=False, allow_infinity=False,
    allow_subnormal=False,
)
points = st.builds(Vec2, coords, coords)

# Axis-aligned rectangles (the typical building footprint) ...
rectangles = st.builds(
    lambda x, y, w, h: Rectangle(x, y, x + w, y + h),
    coords, coords,
    st.floats(min_value=0.5, max_value=80.0),
    st.floats(min_value=0.5, max_value=80.0),
)
# ... plus arbitrary triangles so non-axis-aligned edges are covered too.
triangles = st.builds(
    lambda a, b, c: Polygon([a, b, c]),
    points, points, points,
).filter(lambda p: p.area() > 1e-6)

obstacle_fields = st.lists(st.one_of(rectangles, triangles), min_size=0, max_size=12)


def assert_equivalent(obstacles, a, b):
    index = ObstacleIndex(obstacles, cell_size=CELL)
    assert index.blocked(a, b) == (not line_of_sight(a, b, obstacles)), (
        f"indexed LOS diverges from brute force for ray {a} -> {b}"
    )


@settings(max_examples=300, deadline=None)
@given(obstacle_fields, points, points)
def test_indexed_los_matches_bruteforce_on_random_rays(obstacles, a, b):
    assert_equivalent(obstacles, a, b)


@settings(max_examples=200, deadline=None)
@given(
    obstacle_fields,
    st.integers(min_value=-10, max_value=10),
    coords,
    coords,
    coords,
)
def test_rays_along_cell_boundaries(obstacles, cell_line, y0, y1, x_free):
    """Rays lying exactly on a grid line (both orientations) stay exact."""
    boundary = cell_line * CELL
    assert_equivalent(obstacles, Vec2(boundary, y0), Vec2(boundary, y1))
    assert_equivalent(obstacles, Vec2(y0, boundary), Vec2(y1, boundary))
    # A ray starting exactly on a cell corner, ending anywhere.
    assert_equivalent(obstacles, Vec2(boundary, boundary), Vec2(x_free, y1))


@settings(max_examples=200, deadline=None)
@given(obstacle_fields, points)
def test_zero_length_rays(obstacles, a):
    """A degenerate ray reduces to a point-in-obstacle test."""
    assert_equivalent(obstacles, a, a)


@settings(max_examples=150, deadline=None)
@given(obstacle_fields, st.data())
def test_rays_touching_obstacle_corners_and_edges(obstacles, data):
    """Endpoints sampled on obstacle boundaries hit the epsilon edge cases."""
    if not obstacles:
        return
    polygon = data.draw(st.sampled_from(obstacles))
    vertices = list(polygon.vertices)
    a = data.draw(st.sampled_from(vertices))
    t = data.draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    edge = data.draw(st.sampled_from(polygon.edges()))
    b = edge.point_at(t)
    assert_equivalent(obstacles, a, b)
    other = data.draw(points)
    assert_equivalent(obstacles, b, other)


@settings(max_examples=100, deadline=None)
@given(obstacle_fields, points, points)
def test_visibility_map_flag_paths_agree(obstacles, a, b):
    """The VisibilityMap flag switches implementation, never answers."""
    indexed = VisibilityMap(obstacles, use_obstacle_index=True)
    brute = VisibilityMap(obstacles, use_obstacle_index=False)
    assert indexed.has_line_of_sight(a, b) == brute.has_line_of_sight(a, b)
    targets = [b, a, Vec2(b.x, a.y), Vec2(a.x, b.y)]
    assert indexed.line_of_sight_batch(a, targets) == brute.line_of_sight_batch(
        a, targets
    )
    assert indexed.visible_fraction(a, targets) == brute.visible_fraction(a, targets)
    assert indexed.visible_targets(a, targets, max_range=250.0) == brute.visible_targets(
        a, targets, max_range=250.0
    )


def test_incremental_add_obstacle_keeps_index_consistent():
    """Obstacles added after the index was built are still honoured."""
    vis = VisibilityMap([], use_obstacle_index=True)
    a, b = Vec2(-50.0, 0.0), Vec2(50.0, 0.0)
    assert vis.has_line_of_sight(a, b)  # index built lazily, empty field
    vis.add_obstacle(Rectangle(-10.0, -10.0, 10.0, 10.0))
    assert not vis.has_line_of_sight(a, b)
    assert vis.has_line_of_sight(Vec2(-50.0, 20.0), Vec2(50.0, 20.0))


def test_default_cell_size_tracks_obstacle_extent():
    index = ObstacleIndex([Rectangle(0.0, 0.0, 30.0, 10.0)])
    assert index.cell_size == 30.0
    assert math.isclose(
        ObstacleIndex([]).cell_size, 50.0
    )  # falls back to the documented default

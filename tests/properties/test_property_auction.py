"""Property-based tests for the double-auction mechanism invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.coded_vec_auction import completion_probability
from repro.baselines.decloud_auction import Ask, Bid, DoubleAuction

prices = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


@settings(max_examples=100)
@given(
    st.lists(prices, min_size=0, max_size=15),
    st.lists(prices, min_size=0, max_size=15),
)
def test_auction_individual_rationality_and_balance(bid_prices, ask_prices):
    bids = [Bid(f"r{i}", p) for i, p in enumerate(bid_prices)]
    asks = [Ask(f"p{i}", p) for i, p in enumerate(ask_prices)]
    outcome = DoubleAuction().clear(bids, asks)
    # Each trade is individually rational: bid >= price >= ask.
    for trade in outcome.trades:
        assert trade.bid >= outcome.clearing_price - 1e-9
        assert trade.ask <= outcome.clearing_price + 1e-9
    # No participant trades more than once.
    traders = [t.requester for t in outcome.trades] + [t.provider for t in outcome.trades]
    assert len(traders) == len(set(traders))
    # Matched + unmatched partitions the participants.
    assert len(outcome.trades) + len(outcome.unmatched_bids) == len(bids)
    assert len(outcome.trades) + len(outcome.unmatched_asks) == len(asks)


@settings(max_examples=100)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_completion_probability_is_a_probability_and_monotone_in_n(n, extra, p):
    k = min(n, 3)
    low = completion_probability(n, k, p)
    high = completion_probability(n + extra, k, p)
    assert 0.0 <= low <= 1.0 + 1e-9
    assert high >= low - 1e-9

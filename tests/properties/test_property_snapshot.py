"""Property: interrupting a run with snapshot/restore is unobservable.

The core contract of :mod:`repro.snapshot` — run to ``T``, snapshot,
restore in a fresh object graph, run to the end — must be *byte-identical*
to never having stopped: the fleet-wide delivered-frame sequence, the
scenario report, and every RNG stream's state (hence draw count) all match.
The property is quantified over scenario, seed, cut point, equivalence tier
(exact and fast_math) and fault activity; a deterministic test pins the
full acceptance matrix explicitly.
"""

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import build_scenario
from repro.scenarios.base import Scenario
from repro.snapshot import DeliveredFrameLog, scenario_fingerprint

DURATION = 10.0

FAULT_KNOBS = dict(
    crash_rate=0.05,
    radio_degradation=5.0,
    loss_burst_rate=0.15,
    malicious_fraction=0.25,
    adversary_profile="mixed",
)


def _build(scenario_name, seed, fast_math, faults):
    knobs = dict(n=4, seed=seed, fast_math=fast_math)
    if faults:
        knobs.update(FAULT_KNOBS)
    return build_scenario(scenario_name, **knobs)


def _uninterrupted(scenario_name, seed, fast_math, faults):
    scenario = _build(scenario_name, seed, fast_math, faults)
    log = DeliveredFrameLog().attach(scenario)
    report = scenario.run(DURATION)
    return log.records, report.as_dict(), scenario_fingerprint(scenario)


def _interrupted(scenario_name, seed, fast_math, faults, cut):
    scenario = _build(scenario_name, seed, fast_math, faults)
    DeliveredFrameLog().attach(scenario)
    handle, path = tempfile.mkstemp(suffix=".reprosnap")
    os.close(handle)
    try:
        scenario.run(DURATION, snapshot_at=cut, snapshot_to=path)
        restored = Scenario.restore(path)
    finally:
        os.unlink(path)
    report = restored.resume()
    log = DeliveredFrameLog.find(restored)
    return log.records, report.as_dict(), scenario_fingerprint(restored)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scenario_name=st.sampled_from(["highway", "urban-grid", "intersection"]),
    seed=st.integers(min_value=0, max_value=10_000),
    cut=st.floats(min_value=0.5, max_value=DURATION - 0.5, allow_nan=False),
    fast_math=st.booleans(),
    faults=st.booleans(),
)
def test_snapshot_restore_is_byte_identical(scenario_name, seed, cut, fast_math, faults):
    frames_a, report_a, fp_a = _uninterrupted(scenario_name, seed, fast_math, faults)
    frames_b, report_b, fp_b = _interrupted(scenario_name, seed, fast_math, faults, cut)
    assert frames_b == frames_a
    assert report_b == report_a
    # Fingerprint equality covers clocks, event-queue bookkeeping, per-node
    # mesh/compute/trust state and — critically — every named RNG stream's
    # bit-generator state, which implies equal draw counts per stream.
    assert fp_b == fp_a


@pytest.mark.parametrize("scenario_name", ["highway", "urban-grid", "intersection"])
@pytest.mark.parametrize("fast_math", [False, True], ids=["exact", "fast"])
@pytest.mark.parametrize("faults", [False, True], ids=["null", "faulty"])
def test_acceptance_matrix_restore_then_run_is_byte_identical(
    scenario_name, fast_math, faults
):
    """The ISSUE acceptance grid: 3 scenarios x 2 tiers x faults off/on."""
    frames_a, report_a, fp_a = _uninterrupted(scenario_name, 7, fast_math, faults)
    frames_b, report_b, fp_b = _interrupted(
        scenario_name, 7, fast_math, faults, cut=0.4 * DURATION
    )
    assert frames_b == frames_a
    assert report_b == report_a
    assert fp_b == fp_a


def test_rng_draw_streams_continue_not_restart():
    """After restore, streams continue mid-sequence rather than reseeding."""
    scenario = _build("highway", 3, False, False)
    handle, path = tempfile.mkstemp(suffix=".reprosnap")
    os.close(handle)
    try:
        scenario.run(DURATION, snapshot_at=4.0, snapshot_to=path)
        restored = Scenario.restore(path)
    finally:
        os.unlink(path)
    fresh = _build("highway", 3, False, False)
    streams = restored.sim.streams.capture_state()
    fresh_streams = fresh.sim.streams.capture_state()
    assert streams["seed"] == fresh_streams["seed"]
    # At least one stream must have advanced past its just-seeded state.
    common = set(streams["streams"]) & set(fresh_streams["streams"])
    assert common
    assert any(
        streams["streams"][name] != fresh_streams["streams"][name]
        for name in common
    )

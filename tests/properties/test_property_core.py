"""Property-based tests for core AirDnD invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate import CandidateScorer, ScoringWeights
from repro.core.models import NeighborDescription, TaskDescription
from repro.core.network_model import predict_contact_time
from repro.geometry.vector import Vec2

coords = st.floats(min_value=-500.0, max_value=500.0, allow_nan=False)
speeds = st.floats(min_value=-40.0, max_value=40.0, allow_nan=False)


@settings(max_examples=100)
@given(coords, coords, speeds, speeds, coords, coords, speeds, speeds,
       st.floats(min_value=10.0, max_value=500.0))
def test_contact_time_is_nonnegative_and_consistent(ax, ay, avx, avy, bx, by, bvx, bvy, comm_range):
    pa, va = Vec2(ax, ay), Vec2(avx, avy)
    pb, vb = Vec2(bx, by), Vec2(bvx, bvy)
    t = predict_contact_time(pa, va, pb, vb, comm_range)
    assert t >= 0.0
    # Symmetric in the two nodes.
    assert t == predict_contact_time(pb, vb, pa, va, comm_range)
    # At the predicted time the pair is at (or beyond) the range boundary,
    # provided the prediction is finite and they started inside range.
    if math.isfinite(t) and (pb - pa).length() <= comm_range and t > 0:
        future_gap = ((pb + vb * t) - (pa + va * t)).length()
        assert future_gap >= comm_range - 1e-3


weights = st.builds(
    ScoringWeights,
    compute=st.floats(min_value=0.0, max_value=1.0),
    link=st.floats(min_value=0.0, max_value=1.0),
    contact_time=st.floats(min_value=0.0, max_value=1.0),
    data=st.floats(min_value=0.0, max_value=1.0),
    trust=st.floats(min_value=0.0, max_value=1.0),
)

neighbors = st.builds(
    NeighborDescription,
    name=st.sampled_from(["a", "b", "c"]),
    position=st.builds(Vec2, coords, coords),
    velocity=st.builds(Vec2, speeds, speeds),
    distance_m=st.floats(min_value=0.0, max_value=400.0),
    link_rate_bps=st.floats(min_value=0.0, max_value=30e6),
    link_snr_db=st.floats(min_value=-10.0, max_value=40.0),
    compute_headroom_ops=st.floats(min_value=0.0, max_value=1e10),
    queue_length=st.integers(min_value=0, max_value=10),
    data_summary=st.just({}),
    trust_score=st.floats(min_value=0.0, max_value=1.0),
    beacon_age_s=st.floats(min_value=0.0, max_value=5.0),
    predicted_contact_time_s=st.floats(min_value=0.0, max_value=1e3),
)


@settings(max_examples=100)
@given(weights, neighbors)
def test_candidate_scores_always_in_unit_interval(w, neighbor):
    scorer = CandidateScorer(weights=w)
    task = TaskDescription(function_name="f", operations=1e8)
    result = scorer.score_neighbor(neighbor, task)
    assert 0.0 <= result.score <= 1.0
    if not result.eligible:
        assert result.rejection_reason
    else:
        for value in result.subscores.values():
            assert 0.0 <= value <= 1.0

"""Property-based tests for occupancy-grid fusion and object-list fusion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.vector import Vec2
from repro.perception.objects import FusedObject, ObjectList, fuse_object_lists
from repro.perception.occupancy import GridSpec, OccupancyGrid, OCCUPIED

coords = st.floats(min_value=0.0, max_value=19.0, allow_nan=False)
cells = st.tuples(coords, coords)


def grid_from_marks(occupied, free):
    grid = OccupancyGrid(GridSpec(Vec2(0, 0), 20.0, 20.0, cell_size=1.0))
    for x, y in free:
        grid.mark(Vec2(x, y), 1)
    for x, y in occupied:
        grid.mark_occupied(Vec2(x, y))
    return grid


@settings(max_examples=60)
@given(st.lists(cells, max_size=20), st.lists(cells, max_size=20),
       st.lists(cells, max_size=20), st.lists(cells, max_size=20))
def test_fusion_is_commutative_and_preserves_occupied(occ_a, free_a, occ_b, free_b):
    a = grid_from_marks(occ_a, free_a)
    b = grid_from_marks(occ_b, free_b)
    ab = a.fuse(b)
    ba = b.fuse(a)
    assert (ab.cells == ba.cells).all()
    # Every cell occupied in either input is occupied in the fusion.
    for x, y in occ_a + occ_b:
        assert ab.state_at(Vec2(x, y)) == OCCUPIED
    # Fusion never knows less than either input.
    assert ab.known_fraction() >= max(a.known_fraction(), b.known_fraction()) - 1e-12


labels = st.sampled_from(["ped", "car", "bike", "truck"])
objects = st.lists(
    st.builds(
        FusedObject,
        label=labels,
        position=st.builds(Vec2, coords, coords),
        confidence=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    ),
    max_size=6,
)


@settings(max_examples=60)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=10, allow_nan=False), objects),
                min_size=1, max_size=4))
def test_object_fusion_covers_all_labels_and_bounds_confidence(lists):
    object_lists = [
        ObjectList(observer=f"o{i}", timestamp=t, objects=objs)
        for i, (t, objs) in enumerate(lists)
    ]
    fused = fuse_object_lists(object_lists)
    input_labels = {o.label for ol in object_lists for o in ol.objects}
    assert set(fused.labels()) == input_labels
    for obj in fused.objects:
        assert 0.0 <= obj.confidence <= 1.0
        assert obj.observers >= 1
    # Fused labels are unique.
    assert len(fused.labels()) == len(set(fused.labels()))

"""Property-based tests for the metric containers."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.statistics import percentile
from repro.simcore.monitor import SampleSeries, TimeSeries

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@given(st.lists(finite, min_size=1, max_size=200))
def test_sample_series_mean_between_min_and_max(values):
    series = SampleSeries("x")
    for v in values:
        series.add(v)
    assert series.minimum() - 1e-9 <= series.mean() <= series.maximum() + 1e-9


@given(st.lists(finite, min_size=1, max_size=200), st.floats(min_value=0, max_value=100))
def test_sample_percentile_within_range_and_monotone(values, q):
    series = SampleSeries("x")
    for v in values:
        series.add(v)
    p = series.percentile(q)
    assert series.minimum() - 1e-9 <= p <= series.maximum() + 1e-9
    assert series.percentile(0) <= series.percentile(100)


@given(st.lists(finite, min_size=1, max_size=100))
def test_module_percentile_agrees_with_series(values):
    series = SampleSeries("x")
    for v in values:
        series.add(v)
    assert math.isclose(series.percentile(50), percentile(values, 50), rel_tol=1e-9, abs_tol=1e-9)


# Timestamps are quantised to microseconds: with denormal-sized time deltas
# (e.g. t0=0.0, t1=5e-324) the product `value * delta` rounds to a multiple
# of the smallest denormal, so `total / duration` can exceed the largest
# observed value by pure float granularity — an artifact that says nothing
# about the time-weighting logic (the same reason the geometry suite
# excludes subnormals), and simulation clocks never produce such deltas.
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e3, allow_nan=False)
                          .map(lambda t: round(t, 6)), finite),
                min_size=1, max_size=100))
def test_time_weighted_mean_bounded_by_observed_values(points):
    points = sorted(points, key=lambda p: p[0])
    series = TimeSeries("x")
    for t, v in points:
        series.record(t, v)
    mean = series.time_weighted_mean()
    values = [v for _, v in points]
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

"""Tests for the energy model."""

import pytest

from repro.compute.energy import EnergyModel


def test_idle_energy_only():
    model = EnergyModel(idle_power_w=2.0, busy_power_w=10.0)
    assert model.energy_joules(100.0) == pytest.approx(200.0)
    assert model.dynamic_energy_joules() == 0.0


def test_busy_energy_accumulates():
    model = EnergyModel(idle_power_w=2.0, busy_power_w=10.0)
    model.record_busy(5.0)
    model.record_busy(5.0)
    assert model.dynamic_energy_joules() == pytest.approx(100.0)
    assert model.energy_joules(100.0) == pytest.approx(200.0 + 100.0)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        EnergyModel(idle_power_w=-1.0)
    model = EnergyModel()
    with pytest.raises(ValueError):
        model.record_busy(-1.0)
    with pytest.raises(ValueError):
        model.energy_joules(-1.0)

"""Tests for resource specs and requirements."""

import pytest

from repro.compute.resources import ResourceRequirement, ResourceSpec


def test_spec_totals_and_accelerators():
    spec = ResourceSpec(cpu_ops_per_second=2e9, cores=4, accelerators={"gpu": 1e10})
    assert spec.total_ops_per_second == 8e9
    assert spec.has_accelerator("gpu")
    assert not spec.has_accelerator("tpu")


def test_spec_validation():
    with pytest.raises(ValueError):
        ResourceSpec(cpu_ops_per_second=0)
    with pytest.raises(ValueError):
        ResourceSpec(cores=0)
    with pytest.raises(ValueError):
        ResourceSpec(memory_mb=0)


def test_requirement_validation():
    with pytest.raises(ValueError):
        ResourceRequirement(operations=0)
    with pytest.raises(ValueError):
        ResourceRequirement(memory_mb=-1)


def test_memory_gate():
    spec = ResourceSpec(memory_mb=512)
    fits = ResourceRequirement(memory_mb=256)
    too_big = ResourceRequirement(memory_mb=1024)
    assert fits.satisfied_by(spec)
    assert not too_big.satisfied_by(spec)


def test_required_accelerator_gate():
    cpu_only = ResourceSpec()
    gpu_node = ResourceSpec(accelerators={"gpu": 1e10})
    needs_gpu = ResourceRequirement(accelerator="gpu", accelerator_required=True)
    prefers_gpu = ResourceRequirement(accelerator="gpu", accelerator_required=False)
    assert not needs_gpu.satisfied_by(cpu_only)
    assert needs_gpu.satisfied_by(gpu_node)
    assert prefers_gpu.satisfied_by(cpu_only)


def test_execution_time_uses_accelerator_when_available():
    gpu_node = ResourceSpec(cpu_ops_per_second=1e9, accelerators={"gpu": 1e10})
    requirement = ResourceRequirement(operations=1e10, accelerator="gpu")
    assert requirement.execution_time_on(gpu_node) == pytest.approx(1.0)
    cpu_node = ResourceSpec(cpu_ops_per_second=1e9)
    assert requirement.execution_time_on(cpu_node) == pytest.approx(10.0)

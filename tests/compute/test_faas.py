"""Tests for the FaaS registry and runtime."""

import pytest

from repro.compute.faas import FaaSRuntime, FunctionDefinition, FunctionRegistry
from repro.compute.node import ComputeNode
from repro.compute.resources import ResourceSpec
from repro.simcore.simulator import Simulator


def make_runtime(**kwargs):
    sim = Simulator()
    compute = ComputeNode(sim, ResourceSpec(cpu_ops_per_second=1e9, cores=2))
    registry = FunctionRegistry()
    registry.register(
        FunctionDefinition(
            name="double",
            body=lambda params, pond: params["x"] * 2,
            cost_model=lambda params: 1e8,
            result_size_bytes=100,
        )
    )
    runtime = FaaSRuntime(sim, compute, registry, **kwargs)
    return sim, runtime, registry


def test_registry_register_get_and_duplicates():
    registry = FunctionRegistry()
    definition = FunctionDefinition("f", lambda p, d: None)
    registry.register(definition)
    assert registry.get("f") is definition
    assert "f" in registry
    assert registry.names() == ["f"]
    with pytest.raises(ValueError):
        registry.register(definition)
    with pytest.raises(KeyError):
        registry.get("missing")


def test_requirement_built_from_cost_model():
    definition = FunctionDefinition(
        "f", lambda p, d: None, cost_model=lambda p: p["n"] * 10.0, memory_mb=64
    )
    requirement = definition.requirement({"n": 5})
    assert requirement.operations == 50.0
    assert requirement.memory_mb == 64


def test_result_size_callable_and_constant():
    fixed = FunctionDefinition("a", lambda p, d: None, result_size_bytes=123)
    dynamic = FunctionDefinition("b", lambda p, d: None, result_size_bytes=lambda r: len(r))
    assert fixed.result_size("anything") == 123
    assert dynamic.result_size("four") == 4


def test_invoke_returns_result_via_callback():
    sim, runtime, _ = make_runtime()
    results = []
    runtime.invoke("double", {"x": 21}, None, on_complete=lambda inv: results.append(inv))
    sim.run(until=2.0)
    assert len(results) == 1
    assert results[0].result == 42
    assert results[0].result_size_bytes == 100
    assert results[0].total_time > 0


def test_cold_then_warm_start_latency():
    sim, runtime, _ = make_runtime(cold_start_latency=0.5, warm_start_latency=0.01)
    times = []
    runtime.invoke("double", {"x": 1}, None, on_complete=lambda inv: times.append(inv.total_time))
    sim.run(until=2.0)
    runtime.invoke("double", {"x": 1}, None, on_complete=lambda inv: times.append(inv.total_time))
    sim.run(until=4.0)
    assert runtime.cold_starts == 1
    assert times[0] > times[1]


def test_unknown_function_raises():
    sim, runtime, _ = make_runtime()
    with pytest.raises(KeyError):
        runtime.invoke("nope", {}, None, on_complete=lambda inv: None)


def test_warm_pool_eviction_causes_second_cold_start():
    sim = Simulator()
    compute = ComputeNode(sim, ResourceSpec(cores=4))
    registry = FunctionRegistry()
    for name in ("f1", "f2", "f3"):
        registry.register(FunctionDefinition(name, lambda p, d: None, lambda p: 1e7))
    runtime = FaaSRuntime(sim, compute, registry, warm_pool_size=2)
    for name in ("f1", "f2", "f3", "f1"):
        runtime.invoke(name, {}, None, on_complete=lambda inv: None)
        sim.run(until=sim.now + 2.0)
    # f1 was evicted by f3, so it cold-started twice: f1, f2, f3, f1 again.
    assert runtime.cold_starts == 4

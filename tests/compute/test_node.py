"""Tests for the compute node executor."""

import pytest

from repro.compute.node import ComputeNode, TaskExecution
from repro.compute.resources import ResourceRequirement, ResourceSpec
from repro.simcore.simulator import Simulator


def make_node(cores=1, rate=1e9, **kwargs):
    sim = Simulator()
    node = ComputeNode(sim, ResourceSpec(cpu_ops_per_second=rate, cores=cores), **kwargs)
    return sim, node


def test_execution_takes_operations_over_rate_seconds():
    sim, node = make_node(rate=1e9)
    finished = []
    node.submit(TaskExecution(ResourceRequirement(operations=2e9),
                              on_complete=lambda e: finished.append(sim.now)))
    sim.run(until=1.0)
    assert finished == []
    sim.run(until=3.0)
    assert finished == [pytest.approx(2.0)]


def test_queueing_on_single_core():
    sim, node = make_node(cores=1, rate=1e9)
    order = []
    for label in ("first", "second"):
        node.submit(TaskExecution(ResourceRequirement(operations=1e9), label=label,
                                  on_complete=lambda e: order.append((e.label, sim.now))))
    assert node.queue_length == 1
    sim.run(until=5.0)
    assert order == [("first", pytest.approx(1.0)), ("second", pytest.approx(2.0))]
    assert node.completed_count() == 2
    assert node.mean_queueing_delay() == pytest.approx(0.5)


def test_multicore_runs_in_parallel():
    sim, node = make_node(cores=2, rate=1e9)
    done = []
    for _ in range(2):
        node.submit(TaskExecution(ResourceRequirement(operations=1e9),
                                  on_complete=lambda e: done.append(sim.now)))
    sim.run(until=1.5)
    assert done == [pytest.approx(1.0), pytest.approx(1.0)]


def test_rejection_when_static_resources_insufficient():
    sim, node = make_node()
    execution = TaskExecution(ResourceRequirement(operations=1e8, memory_mb=1e6))
    accepted = node.submit(execution)
    assert not accepted
    assert execution.rejected
    assert node.rejected_count == 1


def test_headroom_shrinks_with_load_and_respects_reserve():
    sim, node = make_node(cores=2, rate=1e9, reserve_fraction=0.5)
    assert node.headroom_ops() == pytest.approx(2e9 * 0.5)
    node.submit(TaskExecution(ResourceRequirement(operations=5e9)))
    assert node.headroom_ops() == pytest.approx(1e9 * 0.5)
    node.submit(TaskExecution(ResourceRequirement(operations=5e9)))
    assert node.headroom_ops() == 0.0
    assert node.load == pytest.approx(1.0)


def test_utilization_reflects_busy_time():
    sim, node = make_node(cores=1, rate=1e9)
    node.submit(TaskExecution(ResourceRequirement(operations=5e9)))
    sim.run(until=10.0)
    assert node.utilization() == pytest.approx(0.5, abs=0.05)


def test_invalid_reserve_fraction():
    sim = Simulator()
    with pytest.raises(ValueError):
        ComputeNode(sim, reserve_fraction=1.0)

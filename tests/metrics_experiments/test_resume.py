"""Tests for sweep resumption (`--resume`): cache load and runner reuse."""

import json
import math

import pytest

from repro.experiments.export import SweepCache, load_sweep_cache, write_json
from repro.experiments.runner import ExperimentRunner, SweepGrid, SweepPoint


class CountingRunOnce:
    """A run_once that records every executed (params, seed) cell."""

    def __init__(self):
        self.calls = []

    def __call__(self, params, seed):
        self.calls.append((tuple(sorted(params.items())), seed))
        return {"metric": float(seed), "n_out": float(params.get("n", 0))}


def run_and_export(path, grid, repetitions=2, base_seed=1000):
    run_once = CountingRunOnce()
    runner = ExperimentRunner(run_once, repetitions=repetitions, base_seed=base_seed)
    results = runner.run_sweep(grid.points())
    write_json(
        str(path),
        results,
        scenario="demo",
        base_seed=base_seed,
        repetitions=repetitions,
    )
    return results


def test_cache_roundtrip_reconstructs_every_cell(tmp_path):
    path = tmp_path / "sweep.json"
    grid = SweepGrid({"n": [4, 8], "rate": [0.5, 1.0]})
    results = run_and_export(path, grid)
    cache = load_sweep_cache(str(path))
    assert cache.scenario == "demo"
    assert len(cache) == len(grid) * 2
    for index, result in enumerate(results):
        for repetition, run in enumerate(result.runs):
            seed = 1000 + index * 1000 + repetition
            assert cache.lookup(result.point.as_dict(), seed) == run


def test_resumed_sweep_runs_only_missing_cells(tmp_path):
    path = tmp_path / "sweep.json"
    small = SweepGrid({"n": [4, 8], "rate": [0.5, 1.0]})
    originals = run_and_export(path, small)
    cache = load_sweep_cache(str(path))

    bigger = SweepGrid({"n": [4, 8, 16], "rate": [0.5, 1.0]})
    fresh = CountingRunOnce()
    runner = ExperimentRunner(fresh, repetitions=2, base_seed=1000)
    results = runner.run_sweep(bigger.points(), cache=cache)
    # The shared prefix (points 0..3 keep their flat index) came from disk.
    assert cache.hits == 8
    assert len(fresh.calls) == 4  # only the two new points x 2 reps
    assert all(params[0] == ("n", 16) for params, _ in fresh.calls)
    for old, new in zip(originals, results):
        assert new.runs == old.runs


def test_resumed_parallel_sweep_matches_sequential(tmp_path):
    path = tmp_path / "sweep.json"
    grid = SweepGrid({"n": [4, 8]})
    run_and_export(path, grid)
    sequential = ExperimentRunner(
        CountingRunOnce(), repetitions=2, base_seed=1000
    ).run_sweep(grid.points(), cache=load_sweep_cache(str(path)))
    parallel = ExperimentRunner(
        CountingRunOnce(), repetitions=2, base_seed=1000
    ).run_sweep(grid.points(), jobs=2, cache=load_sweep_cache(str(path)))
    assert [r.runs for r in parallel] == [r.runs for r in sequential]


def test_cache_misses_on_different_seed_or_params():
    cache = SweepCache(scenario="demo")
    cache.cells[((("n", "4"),), 1000)] = {"metric": 1.0}
    assert cache.lookup({"n": 4}, 1000) == {"metric": 1.0}
    assert cache.lookup({"n": 4}, 1001) is None
    assert cache.lookup({"n": 5}, 1000) is None
    # Type-discriminating: int 4 and float 4.0 are different sweep values.
    assert cache.lookup({"n": 4.0}, 1000) is None
    assert cache.hits == 1 and cache.misses == 3


def test_cached_nulls_come_back_as_nan(tmp_path):
    path = tmp_path / "sweep.json"
    payload = {
        "schema": "repro.sweep/1",
        "sweep": {"scenario": "demo", "base_seed": 500},
        "points": [
            {"params": {"n": 2}, "runs": [{"metric": None}], "aggregates": {}}
        ],
    }
    path.write_text(json.dumps(payload))
    cache = load_sweep_cache(str(path))
    metrics = cache.lookup({"n": 2}, 500)
    assert metrics is not None and math.isnan(metrics["metric"])


def test_load_rejects_non_sweep_documents(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError, match="not a sweep export"):
        load_sweep_cache(str(path))


def test_load_rejects_documents_without_base_seed(tmp_path):
    path = tmp_path / "no-seed.json"
    path.write_text(json.dumps({"schema": "repro.sweep/1", "sweep": {}, "points": []}))
    with pytest.raises(ValueError, match="base_seed"):
        load_sweep_cache(str(path))

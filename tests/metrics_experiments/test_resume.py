"""Tests for sweep resumption (`--resume`): cache load and runner reuse."""

import json
import math

import pytest

from repro.experiments.export import (
    SweepCache,
    SweepCacheError,
    load_sweep_cache,
    write_json,
)
from repro.experiments.runner import ExperimentRunner, SweepGrid, SweepPoint


class CountingRunOnce:
    """A run_once that records every executed (params, seed) cell."""

    def __init__(self):
        self.calls = []

    def __call__(self, params, seed):
        self.calls.append((tuple(sorted(params.items())), seed))
        return {"metric": float(seed), "n_out": float(params.get("n", 0))}


def run_and_export(path, grid, repetitions=2, base_seed=1000):
    run_once = CountingRunOnce()
    runner = ExperimentRunner(run_once, repetitions=repetitions, base_seed=base_seed)
    results = runner.run_sweep(grid.points())
    write_json(
        str(path),
        results,
        scenario="demo",
        base_seed=base_seed,
        repetitions=repetitions,
    )
    return results


def test_cache_roundtrip_reconstructs_every_cell(tmp_path):
    path = tmp_path / "sweep.json"
    grid = SweepGrid({"n": [4, 8], "rate": [0.5, 1.0]})
    results = run_and_export(path, grid)
    cache = load_sweep_cache(str(path))
    assert cache.scenario == "demo"
    assert len(cache) == len(grid) * 2
    for index, result in enumerate(results):
        for repetition, run in enumerate(result.runs):
            seed = 1000 + index * 1000 + repetition
            assert cache.lookup(result.point.as_dict(), seed) == run


def test_resumed_sweep_runs_only_missing_cells(tmp_path):
    path = tmp_path / "sweep.json"
    small = SweepGrid({"n": [4, 8], "rate": [0.5, 1.0]})
    originals = run_and_export(path, small)
    cache = load_sweep_cache(str(path))

    bigger = SweepGrid({"n": [4, 8, 16], "rate": [0.5, 1.0]})
    fresh = CountingRunOnce()
    runner = ExperimentRunner(fresh, repetitions=2, base_seed=1000)
    results = runner.run_sweep(bigger.points(), cache=cache)
    # The shared prefix (points 0..3 keep their flat index) came from disk.
    assert cache.hits == 8
    assert len(fresh.calls) == 4  # only the two new points x 2 reps
    assert all(params[0] == ("n", 16) for params, _ in fresh.calls)
    for old, new in zip(originals, results):
        assert new.runs == old.runs


def test_resumed_parallel_sweep_matches_sequential(tmp_path):
    path = tmp_path / "sweep.json"
    grid = SweepGrid({"n": [4, 8]})
    run_and_export(path, grid)
    sequential = ExperimentRunner(
        CountingRunOnce(), repetitions=2, base_seed=1000
    ).run_sweep(grid.points(), cache=load_sweep_cache(str(path)))
    parallel = ExperimentRunner(
        CountingRunOnce(), repetitions=2, base_seed=1000
    ).run_sweep(grid.points(), jobs=2, cache=load_sweep_cache(str(path)))
    assert [r.runs for r in parallel] == [r.runs for r in sequential]


def test_cache_misses_on_different_seed_or_params():
    cache = SweepCache(scenario="demo")
    cache.cells[((("n", "4"),), 1000)] = {"metric": 1.0}
    assert cache.lookup({"n": 4}, 1000) == {"metric": 1.0}
    assert cache.lookup({"n": 4}, 1001) is None
    assert cache.lookup({"n": 5}, 1000) is None
    # Type-discriminating: int 4 and float 4.0 are different sweep values.
    assert cache.lookup({"n": 4.0}, 1000) is None
    assert cache.hits == 1 and cache.misses == 3


def test_cached_nulls_come_back_as_nan(tmp_path):
    path = tmp_path / "sweep.json"
    payload = {
        "schema": "repro.sweep/1",
        "sweep": {"scenario": "demo", "base_seed": 500},
        "points": [
            {"params": {"n": 2}, "runs": [{"metric": None}], "aggregates": {}}
        ],
    }
    path.write_text(json.dumps(payload))
    cache = load_sweep_cache(str(path))
    metrics = cache.lookup({"n": 2}, 500)
    assert metrics is not None and math.isnan(metrics["metric"])


def test_load_rejects_non_sweep_documents(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError, match="not a sweep export"):
        load_sweep_cache(str(path))


def test_load_rejects_documents_without_base_seed(tmp_path):
    path = tmp_path / "no-seed.json"
    path.write_text(json.dumps({"schema": "repro.sweep/1", "sweep": {}, "points": []}))
    with pytest.raises(ValueError, match="base_seed"):
        load_sweep_cache(str(path))

# ------------------------------------------------------- typed cache errors


def _valid_payload():
    return {
        "schema": "repro.sweep/1",
        "sweep": {"scenario": "demo", "base_seed": 500},
        "points": [
            {"params": {"n": 2}, "runs": [{"metric": 1.0}], "aggregates": {}}
        ],
    }


def test_unusable_cache_raises_typed_error_naming_path(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(SweepCacheError) as excinfo:
        load_sweep_cache(str(path))
    assert excinfo.value.path == str(path)
    assert excinfo.value.offset is None
    assert str(path) in str(excinfo.value)


def test_truncated_cache_reports_byte_offset(tmp_path):
    full = json.dumps(_valid_payload())
    path = tmp_path / "truncated.json"
    path.write_text(full[: len(full) // 2])
    with pytest.raises(SweepCacheError, match="truncated") as excinfo:
        load_sweep_cache(str(path))
    assert excinfo.value.offset is not None
    assert 0 < excinfo.value.offset <= len(full) // 2
    assert f"byte {excinfo.value.offset}" in str(excinfo.value)


def test_corrupt_cache_reports_byte_offset(tmp_path):
    # Corruption in the middle (not truncation): flag as malformed, not
    # truncated, and point at the offending byte.
    text = json.dumps(_valid_payload())
    corrupted = text.replace('"runs":', '"runs"~', 1)
    path = tmp_path / "corrupt.json"
    path.write_text(corrupted)
    with pytest.raises(SweepCacheError, match="malformed JSON") as excinfo:
        load_sweep_cache(str(path))
    assert excinfo.value.offset == corrupted.index("~")


def test_empty_cache_file_is_typed_and_distinct(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text("")
    with pytest.raises(SweepCacheError, match="empty") as excinfo:
        load_sweep_cache(str(path))
    assert excinfo.value.offset == 0


def test_non_object_cache_document_is_typed(tmp_path):
    path = tmp_path / "list.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(SweepCacheError, match="found list"):
        load_sweep_cache(str(path))


def test_cache_error_is_a_value_error():
    # The CLI's --resume handler (and older callers) catch ValueError.
    assert issubclass(SweepCacheError, ValueError)

"""Tests for the statistics helpers."""

import math

import pytest

from repro.metrics.statistics import confidence_interval, mean, percentile, stddev


def test_mean_and_nan_filtering():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([1.0, math.nan, 3.0]) == 2.0
    assert math.isnan(mean([]))
    assert math.isnan(mean([math.nan]))


def test_stddev_sample_formula():
    assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.138, abs=0.01)
    assert math.isnan(stddev([1.0]))


def test_percentile_interpolation_and_bounds():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == 2.5
    assert math.isnan(percentile([], 50))
    with pytest.raises(ValueError):
        percentile(values, 150)


def test_confidence_interval_contains_mean():
    values = [10.0, 12.0, 9.0, 11.0, 10.5]
    low, high = confidence_interval(values)
    assert low < mean(values) < high
    assert confidence_interval([1.0]) == (pytest.approx(math.nan, nan_ok=True),) * 2

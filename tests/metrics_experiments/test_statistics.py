"""Tests for the statistics helpers."""

import math

import pytest

from repro.metrics.statistics import confidence_interval, mean, percentile, stddev


def test_mean_and_nan_filtering():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([1.0, math.nan, 3.0]) == 2.0
    assert math.isnan(mean([]))
    assert math.isnan(mean([math.nan]))


def test_stddev_sample_formula():
    assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.138, abs=0.01)
    assert math.isnan(stddev([1.0]))


def test_percentile_interpolation_and_bounds():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == 2.5
    assert math.isnan(percentile([], 50))
    with pytest.raises(ValueError):
        percentile(values, 150)


def test_percentile_validates_q_before_the_empty_shortcut():
    # Regression: an out-of-range q used to return nan silently when the
    # input was empty or all-nan, but raise for non-empty input.
    for bad_q in (-1, 100.1, 150):
        with pytest.raises(ValueError):
            percentile([], bad_q)
        with pytest.raises(ValueError):
            percentile([math.nan], bad_q)
        with pytest.raises(ValueError):
            percentile([1.0], bad_q)


def test_percentile_edge_inputs():
    assert percentile([7.0], 0) == 7.0
    assert percentile([7.0], 100) == 7.0
    assert math.isnan(percentile([math.nan, math.nan], 50))
    assert percentile([math.nan, 3.0], 50) == 3.0


def test_confidence_interval_edge_inputs():
    assert confidence_interval([]) == (pytest.approx(math.nan, nan_ok=True),) * 2
    assert confidence_interval([math.nan, math.nan]) == (
        pytest.approx(math.nan, nan_ok=True),
    ) * 2
    low, high = confidence_interval([5.0, 5.0, 5.0])
    assert low == high == 5.0


def test_confidence_interval_contains_mean():
    values = [10.0, 12.0, 9.0, 11.0, 10.5]
    low, high = confidence_interval(values)
    assert low < mean(values) < high
    assert confidence_interval([1.0]) == (pytest.approx(math.nan, nan_ok=True),) * 2

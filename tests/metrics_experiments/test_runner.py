"""Tests for the experiment sweep runner."""

import pytest

from repro.experiments.runner import (
    ExperimentRunner,
    SweepPoint,
    run_scenario_once,
    sweep_scenario,
)


def test_sweep_point_construction():
    point = SweepPoint.of("n=5", n=5, policy="airdnd")
    assert point.as_dict() == {"n": 5, "policy": "airdnd"}
    assert point.name == "n=5"


def test_runner_repetitions_and_seed_variation():
    seen_seeds = []

    def run_once(params, seed):
        seen_seeds.append(seed)
        return {"value": params["n"] * 10 + seed % 10}

    runner = ExperimentRunner(run_once, repetitions=3, base_seed=100)
    results = runner.run_sweep([SweepPoint.of("n=1", n=1), SweepPoint.of("n=2", n=2)])
    assert len(results) == 2
    assert len(results[0].runs) == 3
    assert len(set(seen_seeds)) == 6   # every run gets a distinct seed
    assert results[0].mean("value") != results[1].mean("value")


def test_result_statistics_and_missing_metrics():
    def run_once(params, seed):
        return {"always": 1.0} if seed % 2 == 0 else {"always": 3.0, "sometimes": 5.0}

    runner = ExperimentRunner(run_once, repetitions=4, base_seed=0)
    result = runner.run_point(SweepPoint.of("p"))
    assert result.mean("always") == 2.0
    assert result.metric_values("sometimes") == [5.0, 5.0]
    low, high = result.ci("always")
    assert low < 2.0 < high
    assert result.stddev("always") > 0


def test_invalid_repetitions():
    with pytest.raises(ValueError):
        ExperimentRunner(lambda p, s: {}, repetitions=0)


def test_run_scenario_once_returns_numeric_report():
    metrics = run_scenario_once("intersection", seed=3, n=4, duration=3.0)
    assert metrics["node_count"] == 4.0
    assert all(isinstance(v, float) for v in metrics.values())
    assert "success_rate" in metrics and "occluded_detection_rate" in metrics


def test_sweep_scenario_runs_each_size_with_repetitions():
    results = sweep_scenario(
        "intersection", fleet_sizes=[4, 5], duration=3.0, repetitions=2, base_seed=50
    )
    assert [r.point.as_dict()["n"] for r in results] == [4, 5]
    assert all(len(r.runs) == 2 for r in results)
    assert results[0].runs[0]["node_count"] == 4.0
    assert results[1].runs[0]["node_count"] == 5.0


def test_sweep_scenario_is_deterministic_for_equal_seeds():
    kwargs = dict(fleet_sizes=[4], duration=3.0, repetitions=2, base_seed=7)
    first = sweep_scenario("intersection", **kwargs)
    second = sweep_scenario("intersection", **kwargs)
    assert first[0].runs == second[0].runs


def test_sweep_scenario_rejects_unknown_scenario():
    with pytest.raises(ValueError):
        sweep_scenario("not-a-scenario", fleet_sizes=[2], repetitions=1)

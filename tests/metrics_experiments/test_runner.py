"""Tests for the experiment sweep runner."""

import math

import pytest

from repro.experiments.runner import (
    ExperimentRunner,
    ScenarioRunOnce,
    SweepGrid,
    SweepPoint,
    numeric_metrics,
    run_scenario_once,
    sweep_scenario,
    sweep_scenario_grid,
)


def test_sweep_point_construction():
    point = SweepPoint.of("n=5", n=5, policy="airdnd")
    assert point.as_dict() == {"n": 5, "policy": "airdnd"}
    assert point.name == "n=5"


def test_runner_repetitions_and_seed_variation():
    seen_seeds = []

    def run_once(params, seed):
        seen_seeds.append(seed)
        return {"value": params["n"] * 10 + seed % 10}

    runner = ExperimentRunner(run_once, repetitions=3, base_seed=100)
    results = runner.run_sweep([SweepPoint.of("n=1", n=1), SweepPoint.of("n=2", n=2)])
    assert len(results) == 2
    assert len(results[0].runs) == 3
    assert len(set(seen_seeds)) == 6   # every run gets a distinct seed
    assert results[0].mean("value") != results[1].mean("value")


def test_result_statistics_and_missing_metrics():
    def run_once(params, seed):
        return {"always": 1.0} if seed % 2 == 0 else {"always": 3.0, "sometimes": 5.0}

    runner = ExperimentRunner(run_once, repetitions=4, base_seed=0)
    result = runner.run_point(SweepPoint.of("p"))
    assert result.mean("always") == 2.0
    assert result.metric_values("sometimes") == [5.0, 5.0]
    assert result.metric_names() == ["always", "sometimes"]
    low, high = result.ci("always")
    assert low < 2.0 < high
    assert result.stddev("always") > 0


def test_invalid_repetitions():
    with pytest.raises(ValueError):
        ExperimentRunner(lambda p, s: {}, repetitions=0)
    with pytest.raises(ValueError):
        ExperimentRunner(lambda p, s: {}, seed_stride=0)
    with pytest.raises(ValueError):
        ExperimentRunner(lambda p, s: {}).run_sweep([], jobs=0)
    with pytest.raises(ValueError):
        # Would make adjacent points share seeds (rep 1000 of point 0 ==
        # rep 0 of point 1 at the default stride).
        ExperimentRunner(lambda p, s: {}, repetitions=1001)
    ExperimentRunner(lambda p, s: {}, repetitions=50, seed_stride=50)  # boundary ok


# -------------------------------------------------------------- sweep grids


def test_grid_enumerates_row_major():
    grid = SweepGrid({"n": [8, 16], "beacon_period": [0.2, 0.5, 1.0]})
    assert grid.dimension_names == ["n", "beacon_period"]
    assert grid.shape == (2, 3)
    assert len(grid) == 6
    points = grid.points("highway:")
    assert [p.as_dict() for p in points] == [
        {"n": 8, "beacon_period": 0.2},
        {"n": 8, "beacon_period": 0.5},
        {"n": 8, "beacon_period": 1.0},
        {"n": 16, "beacon_period": 0.2},
        {"n": 16, "beacon_period": 0.5},
        {"n": 16, "beacon_period": 1.0},
    ]
    assert points[0].name == "highway:n=8,beacon_period=0.2"


def test_grid_rejects_degenerate_dimensions():
    with pytest.raises(ValueError):
        SweepGrid({})
    with pytest.raises(ValueError):
        SweepGrid({"n": []})
    with pytest.raises(ValueError):
        SweepGrid({"n": [4, 4]})


def test_seed_convention_is_index_times_stride():
    runner = ExperimentRunner(lambda p, s: {}, repetitions=3, base_seed=1000)
    assert runner.seed_for(0, 0) == 1000
    assert runner.seed_for(0, 2) == 1002
    assert runner.seed_for(2, 1) == 3001
    wide = ExperimentRunner(lambda p, s: {}, repetitions=3, base_seed=1000, seed_stride=2000)
    assert wide.seed_for(1, 0) == 3000


def test_grid_points_never_share_a_seed_sequence():
    seeds_per_point = {}

    def run_once(params, seed):
        seeds_per_point.setdefault(tuple(sorted(params.items())), []).append(seed)
        return {}

    runner = ExperimentRunner(run_once, repetitions=4, base_seed=10)
    runner.run_grid(SweepGrid({"a": [1, 2, 3], "b": [10, 20]}))
    all_seeds = [seed for seeds in seeds_per_point.values() for seed in seeds]
    assert len(seeds_per_point) == 6
    assert len(all_seeds) == len(set(all_seeds))  # no seed reused anywhere


# ------------------------------------------------------------- parallelism


def _square_run_once(params, seed):
    """Module-level so it pickles into multiprocessing workers."""
    return {"value": float(params["x"] * params["x"] + seed), "seed": float(seed)}


def test_parallel_jobs_match_sequential_exactly():
    grid = SweepGrid({"x": [1, 2, 3]})
    sequential = ExperimentRunner(_square_run_once, repetitions=2, base_seed=7)
    parallel = ExperimentRunner(_square_run_once, repetitions=2, base_seed=7)
    one = sequential.run_grid(grid, jobs=1)
    many = parallel.run_grid(grid, jobs=3)
    assert [r.point for r in one] == [r.point for r in many]
    assert [r.runs for r in one] == [r.runs for r in many]


# ----------------------------------------------------------- metric typing


def test_numeric_metrics_excludes_bools_and_non_numbers():
    # Regression: isinstance(True, int) is True, so flags used to be silently
    # aggregated as 0/1 "metrics".
    report = {
        "count": 3,
        "rate": 0.5,
        "flag": True,
        "other_flag": False,
        "label": "airdnd",
        "latency": math.nan,
    }
    metrics = numeric_metrics(report)
    assert metrics == {
        "count": 3.0,
        "rate": 0.5,
        "latency": pytest.approx(math.nan, nan_ok=True),
    }
    assert all(type(value) is float for value in metrics.values())


def test_run_scenario_once_drops_bool_report_entries(monkeypatch):
    class FakeReport:
        def as_dict(self):
            return {"tasks": 2, "converged": True, "name": "fake"}

    class FakeScenario:
        def run(self, duration):
            return FakeReport()

    import repro.scenarios

    monkeypatch.setattr(
        repro.scenarios, "build_scenario", lambda *args, **kwargs: FakeScenario()
    )
    metrics = run_scenario_once("intersection", seed=1, n=2, duration=1.0)
    assert metrics == {"tasks": 2.0}


# --------------------------------------------------------- scenario sweeps


def test_run_scenario_once_returns_numeric_report():
    metrics = run_scenario_once("intersection", seed=3, n=4, duration=3.0)
    assert metrics["node_count"] == 4.0
    assert all(isinstance(v, float) for v in metrics.values())
    assert "success_rate" in metrics and "occluded_detection_rate" in metrics


def test_run_scenario_once_forwards_protocol_knobs():
    chatty = run_scenario_once("highway", seed=5, n=3, duration=4.0, beacon_period=0.1)
    quiet = run_scenario_once("highway", seed=5, n=3, duration=4.0, beacon_period=1.0)
    assert chatty["mesh_bytes"] > quiet["mesh_bytes"]


def test_sweep_scenario_runs_each_size_with_repetitions():
    results = sweep_scenario(
        "intersection", fleet_sizes=[4, 5], duration=3.0, repetitions=2, base_seed=50
    )
    assert [r.point.as_dict()["n"] for r in results] == [4, 5]
    assert all(len(r.runs) == 2 for r in results)
    assert results[0].runs[0]["node_count"] == 4.0
    assert results[1].runs[0]["node_count"] == 5.0


def test_sweep_scenario_is_deterministic_for_equal_seeds():
    kwargs = dict(fleet_sizes=[4], duration=3.0, repetitions=2, base_seed=7)
    first = sweep_scenario("intersection", **kwargs)
    second = sweep_scenario("intersection", **kwargs)
    assert first[0].runs == second[0].runs


def test_one_dimensional_grid_matches_legacy_fleet_sweep():
    # The generalised grid path must be seed- and result-identical to the
    # historical fleet-size-only sweep.
    legacy = sweep_scenario(
        "intersection", fleet_sizes=[4, 5], duration=3.0, repetitions=2, base_seed=11
    )
    grid = sweep_scenario_grid(
        "intersection",
        SweepGrid({"n": [4, 5]}),
        duration=3.0,
        repetitions=2,
        base_seed=11,
    )
    assert [r.runs for r in legacy] == [r.runs for r in grid]


def _runs_equal(a, b):
    """Dict-list equality treating nan == nan (pickling breaks the identity
    shortcut Python's ``==`` relies on for in-process nan comparisons)."""
    if len(a) != len(b):
        return False
    for run_a, run_b in zip(a, b):
        if run_a.keys() != run_b.keys():
            return False
        for key in run_a:
            va, vb = run_a[key], run_b[key]
            if not (va == vb or (math.isnan(va) and math.isnan(vb))):
                return False
    return True


def test_sweep_scenario_grid_parallel_jobs_identical():
    kwargs = dict(duration=3.0, repetitions=2, base_seed=9)
    grid = SweepGrid({"n": [4, 5]})
    one = sweep_scenario_grid("intersection", grid, jobs=1, **kwargs)
    many = sweep_scenario_grid("intersection", grid, jobs=4, **kwargs)
    assert [r.point for r in one] == [r.point for r in many]
    assert all(_runs_equal(a.runs, b.runs) for a, b in zip(one, many))


def test_scenario_run_once_is_picklable_and_merges_overrides():
    import pickle

    run_once = ScenarioRunOnce(
        scenario="intersection", duration=3.0, overrides=(("vehicle_speed", 8.0),)
    )
    clone = pickle.loads(pickle.dumps(run_once))
    metrics = clone({"n": 4}, seed=2)
    assert metrics["node_count"] == 4.0


def test_sweep_scenario_rejects_unknown_scenario():
    with pytest.raises(ValueError):
        sweep_scenario("not-a-scenario", fleet_sizes=[2], repetitions=1)


def test_parallel_profile_first_cell_dumps_worker_stats(tmp_path):
    """``profile_first_cell_to`` profiles exactly one fresh cell in a worker
    and leaves the sweep results untouched."""
    import pstats

    stats_path = tmp_path / "cell.prof"
    points = [SweepPoint.of("p0", x=2), SweepPoint.of("p1", x=3)]
    plain = ExperimentRunner(_square_run_once, repetitions=2, base_seed=7)
    profiled = ExperimentRunner(_square_run_once, repetitions=2, base_seed=7)
    expected = plain.run_sweep(points, jobs=2)
    results = profiled.run_sweep(
        points, jobs=2, profile_first_cell_to=str(stats_path)
    )
    assert [r.runs for r in results] == [r.runs for r in expected]
    stats = pstats.Stats(str(stats_path))
    assert stats.total_calls > 0

"""Tests for ASCII result tables and series."""

import pytest

from repro.metrics.report import ResultTable, format_series


def test_table_renders_all_rows_aligned():
    table = ResultTable("Demo", ["name", "value"])
    table.add_row("alpha", 1.23456)
    table.add_row("beta", 2)
    text = table.render()
    assert "Demo" in text
    assert "alpha" in text and "1.235" in text
    assert "beta" in text
    lines = text.splitlines()
    assert len(lines) == 2 + 2 + 2   # title, underline, header, separator, 2 rows


def test_table_add_dict_row_and_arity_check():
    table = ResultTable("T", ["a", "b"])
    table.add_dict_row({"a": 1, "b": 2})
    table.add_dict_row({"a": 3})          # missing key becomes empty
    assert "1" in table.render()
    with pytest.raises(ValueError):
        table.add_row(1, 2, 3)


def test_format_series_requires_matching_lengths():
    text = format_series("latency vs nodes", [1, 2, 3], [0.1, 0.2, 0.3], "nodes", "latency")
    assert "latency vs nodes" in text
    assert "nodes" in text
    with pytest.raises(ValueError):
        format_series("bad", [1, 2], [1.0])

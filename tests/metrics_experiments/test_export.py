"""Tests for JSON/CSV sweep export."""

import csv
import json
import math

import pytest

from repro.experiments.export import export_results, sweep_payload, write_csv, write_json
from repro.experiments.runner import ExperimentResult, SweepPoint


def make_results():
    return [
        ExperimentResult(
            point=SweepPoint.of("a:n=2,bp=0.5", n=2, bp=0.5),
            runs=[{"tasks": 4.0, "latency": 0.25}, {"tasks": 6.0, "latency": math.nan}],
        ),
        ExperimentResult(
            point=SweepPoint.of("a:n=4,bp=0.5", n=4, bp=0.5),
            runs=[{"tasks": 8.0, "latency": 0.5}, {"tasks": 10.0, "latency": 0.7}],
        ),
    ]


def test_payload_contains_runs_and_aggregates():
    payload = sweep_payload(make_results(), scenario="a", repetitions=2)
    assert payload["schema"] == "repro.sweep/1"
    assert payload["sweep"] == {"scenario": "a", "repetitions": 2}
    assert len(payload["points"]) == 2
    first = payload["points"][0]
    assert first["params"] == {"n": 2, "bp": 0.5}
    assert first["runs"][0] == {"tasks": 4.0, "latency": 0.25}
    assert first["aggregates"]["tasks"]["mean"] == 5.0
    assert first["aggregates"]["tasks"]["count"] == 2
    # nan values (the single-latency stddev, the nan run entry) become None.
    assert first["runs"][1]["latency"] is None
    assert first["aggregates"]["latency"]["stddev"] is None


def test_write_json_is_strict_json(tmp_path):
    path = tmp_path / "sweep.json"
    write_json(str(path), make_results(), scenario="a")
    # allow_nan=False already guarantees strictness; parse back to be sure.
    payload = json.loads(path.read_text())
    assert payload["points"][1]["aggregates"]["tasks"]["mean"] == 9.0


def test_write_csv_rows_and_aggregates(tmp_path):
    path = tmp_path / "sweep.csv"
    write_csv(str(path), make_results(), dimensions=["n", "bp"])
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["n", "bp", "repetition", "latency", "tasks"]
    # Two raw rows + mean + stddev per point.
    assert len(rows) == 1 + 2 * 4
    assert rows[1] == ["2", "0.5", "0", "0.25", "4.0"]
    assert rows[2][2:] == ["1", "", "6.0"]           # nan cell left empty
    mean_row = rows[3]
    assert mean_row[2] == "mean" and mean_row[4] == "5.0"
    stddev_row = rows[4]
    assert stddev_row[2] == "stddev" and stddev_row[3] == ""  # nan stddev empty


def test_export_results_dispatches_on_suffix(tmp_path):
    results = make_results()
    json_path = tmp_path / "out.json"
    csv_path = tmp_path / "out.csv"
    assert export_results(str(json_path), results, dimensions=["n", "bp"]) == "json"
    assert export_results(str(csv_path), results, dimensions=["n", "bp"]) == "csv"
    payload = json.loads(json_path.read_text())
    assert payload["sweep"]["dimensions"] == ["n", "bp"]
    assert csv_path.read_text().startswith("n,bp,repetition")
    with pytest.raises(ValueError):
        export_results(str(tmp_path / "out.txt"), results)

"""Tests for the data-type taxonomy."""

from repro.data.datatypes import DataType, is_raw, typical_frame_size


def test_every_type_has_a_size():
    for data_type in DataType:
        assert typical_frame_size(data_type) > 0


def test_raw_types_are_much_larger_than_derived_products():
    assert typical_frame_size(DataType.LIDAR_SCAN) > 100 * typical_frame_size(
        DataType.OBJECT_LIST
    )
    assert typical_frame_size(DataType.CAMERA_FRAME) > typical_frame_size(
        DataType.OCCUPANCY_GRID
    )


def test_is_raw_classification():
    assert is_raw(DataType.LIDAR_SCAN)
    assert is_raw(DataType.CAMERA_FRAME)
    assert not is_raw(DataType.OBJECT_LIST)
    assert not is_raw(DataType.OCCUPANCY_GRID)

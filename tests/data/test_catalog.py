"""Tests for data catalogs."""

from repro.data.catalog import DataCatalog
from repro.data.datatypes import DataType
from repro.data.pond import DataPond
from repro.data.quality import DataQuality
from repro.data.sensors import Detection, SensorFrame
from repro.geometry.vector import Vec2


def pond_with_frame(origin=Vec2(0, 0), time=1.0, range_m=80.0, confidence=0.95):
    pond = DataPond("node")
    pond.store(
        SensorFrame(
            data_type=DataType.LIDAR_SCAN,
            timestamp=time,
            origin=origin,
            detections=[Detection("x", origin + Vec2(5, 0), confidence=confidence)],
            range_m=range_m,
        )
    )
    return pond


def test_catalog_from_pond_lists_types():
    catalog = DataCatalog.from_pond(pond_with_frame(), now=1.2)
    assert DataType.LIDAR_SCAN in catalog
    assert catalog.data_types() == [DataType.LIDAR_SCAN]
    entry = catalog.entry(DataType.LIDAR_SCAN)
    assert entry.frame_count == 1
    assert entry.coverage_center == Vec2(0, 0)
    assert 0.0 <= entry.score() <= 1.0


def test_empty_pond_gives_empty_catalog():
    catalog = DataCatalog.from_pond(DataPond("n"), now=0.0)
    assert catalog.data_types() == []
    assert catalog.entry(DataType.LIDAR_SCAN) is None
    assert catalog.best_score(DataType.LIDAR_SCAN) == 0.0


def test_satisfies_quality_and_region():
    catalog = DataCatalog.from_pond(pond_with_frame(range_m=80.0), now=1.2)
    relaxed = DataQuality(freshness_s=1.0, coverage_radius_m=40.0, resolution=0.5, accuracy=0.5)
    assert catalog.satisfies(DataType.LIDAR_SCAN, relaxed)
    # Region 60 m away is within 80 m coverage.
    assert catalog.satisfies(
        DataType.LIDAR_SCAN, relaxed, region_center=Vec2(60, 0), region_radius=10.0
    )
    # Region 200 m away is not.
    assert not catalog.satisfies(
        DataType.LIDAR_SCAN, relaxed, region_center=Vec2(200, 0), region_radius=10.0
    )


def test_satisfies_fails_on_missing_type_or_quality():
    catalog = DataCatalog.from_pond(pond_with_frame(confidence=0.5), now=1.2)
    strict = DataQuality(freshness_s=0.5, coverage_radius_m=40.0, resolution=0.5, accuracy=0.95)
    assert not catalog.satisfies(DataType.LIDAR_SCAN, strict)
    assert not catalog.satisfies(DataType.CAMERA_FRAME, strict)

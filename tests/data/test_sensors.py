"""Tests for the lidar sensor model."""

from repro.data.datatypes import DataType
from repro.data.pond import DataPond
from repro.data.sensors import LidarSensor
from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2
from repro.simcore.simulator import Simulator


def make_sensor(ground_truth, visibility=None, **kwargs):
    sim = Simulator(seed=8)
    pond = DataPond("ego")
    sensor = LidarSensor(
        sim,
        "ego",
        position_provider=lambda: Vec2(0, 0),
        ground_truth=lambda: ground_truth,
        pond=pond,
        visibility=visibility,
        **kwargs,
    )
    return sim, pond, sensor


def test_detects_visible_in_range_agents():
    sim, pond, sensor = make_sensor([("target", Vec2(20, 0)), ("ego", Vec2(0, 0))], miss_rate=0.0)
    frame = sensor.capture()
    assert frame.detected_labels() == ["target"]
    assert frame.data_type == DataType.LIDAR_SCAN
    assert pond.frame_count(DataType.LIDAR_SCAN) == 1


def test_out_of_range_agents_are_missed():
    sim, pond, sensor = make_sensor([("far", Vec2(500, 0))], range_m=80.0, miss_rate=0.0)
    assert sensor.capture().detections == []


def test_occluded_agents_are_missed():
    visibility = VisibilityMap([Rectangle(5, -5, 15, 5)])
    sim, pond, sensor = make_sensor([("hidden", Vec2(30, 0))], visibility=visibility, miss_rate=0.0)
    assert sensor.capture().detections == []


def test_position_noise_is_applied_but_small():
    sim, pond, sensor = make_sensor([("t", Vec2(20, 0))], miss_rate=0.0, noise_std_m=0.2)
    frame = sensor.capture()
    detection = frame.detections[0]
    assert detection.position.distance_to(Vec2(20, 0)) < 2.0
    assert detection.position != Vec2(20, 0)


def test_miss_rate_one_never_detects():
    sim, pond, sensor = make_sensor([("t", Vec2(20, 0))], miss_rate=1.0)
    for _ in range(5):
        assert sensor.capture().detections == []


def test_periodic_capture_fills_pond():
    sim, pond, sensor = make_sensor([("t", Vec2(20, 0))], period=0.1)
    sim.run(until=1.0)
    assert sensor.frames_captured >= 9
    assert pond.frame_count(DataType.LIDAR_SCAN) >= 9
    sensor.stop()
    count = sensor.frames_captured
    sim.run(until=2.0)
    assert sensor.frames_captured == count

"""Tests for data ponds."""

import pytest

from repro.data.datatypes import DataType
from repro.data.pond import DataPond
from repro.data.sensors import Detection, SensorFrame
from repro.geometry.vector import Vec2


def frame_at(time, origin=Vec2(0, 0), detections=None, range_m=80.0):
    return SensorFrame(
        data_type=DataType.LIDAR_SCAN,
        timestamp=time,
        origin=origin,
        detections=detections or [],
        range_m=range_m,
    )


def test_store_and_query_by_age():
    pond = DataPond("n", retention_s=5.0)
    pond.store(frame_at(0.0))
    pond.store(frame_at(3.0))
    assert pond.frame_count(DataType.LIDAR_SCAN) == 2
    recent = pond.frames(DataType.LIDAR_SCAN, now=4.0, max_age=2.0)
    assert len(recent) == 1
    assert recent[0].timestamp == 3.0


def test_retention_evicts_old_frames():
    pond = DataPond("n", retention_s=2.0)
    pond.store(frame_at(0.0))
    pond.store(frame_at(1.5))
    assert pond.frame_count(DataType.LIDAR_SCAN) == 2
    frames = pond.frames(DataType.LIDAR_SCAN, now=3.0)
    assert len(frames) == 1
    assert pond.frame_count(DataType.LIDAR_SCAN) == 1


def test_per_type_cap_evicts_oldest():
    pond = DataPond("n", max_frames_per_type=3)
    for i in range(5):
        pond.store(frame_at(float(i)))
    frames = pond.frames(DataType.LIDAR_SCAN, now=4.0)
    assert [f.timestamp for f in frames] == [2.0, 3.0, 4.0]


def test_latest_and_empty_behaviour():
    pond = DataPond("n")
    assert pond.latest(DataType.LIDAR_SCAN, now=0.0) is None
    assert pond.quality_of(DataType.LIDAR_SCAN, now=0.0) is None
    assert pond.summary(now=0.0) == {}
    pond.store(frame_at(1.0))
    pond.store(frame_at(2.0))
    assert pond.latest(DataType.LIDAR_SCAN, now=2.5).timestamp == 2.0


def test_quality_reflects_freshness_and_confidence():
    pond = DataPond("n")
    detections = [Detection("x", Vec2(1, 1), confidence=0.8)]
    pond.store(frame_at(1.0, detections=detections, range_m=60.0))
    quality = pond.quality_of(DataType.LIDAR_SCAN, now=1.5)
    assert quality.freshness_s == pytest.approx(0.5)
    assert quality.coverage_radius_m == 60.0
    assert quality.accuracy == pytest.approx(0.8)


def test_summary_digest_format():
    pond = DataPond("n")
    pond.store(frame_at(1.0, range_m=70.0))
    digest = pond.summary(now=1.2)
    assert DataType.LIDAR_SCAN.value in digest
    coverage, freshness, score = digest[DataType.LIDAR_SCAN.value]
    assert coverage == 70.0
    assert freshness == pytest.approx(0.2)
    assert 0.0 <= score <= 1.0


def test_coverage_center_is_latest_origin():
    pond = DataPond("n")
    pond.store(frame_at(0.0, origin=Vec2(0, 0)))
    pond.store(frame_at(1.0, origin=Vec2(5, 5)))
    assert pond.coverage_center(DataType.LIDAR_SCAN, now=1.0) == Vec2(5, 5)


def test_invalid_retention():
    with pytest.raises(ValueError):
        DataPond("n", retention_s=0.0)

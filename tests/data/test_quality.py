"""Tests for data-quality scoring and matching."""

import pytest

from repro.data.quality import DataQuality, meets_requirement, quality_score


def test_quality_validation():
    with pytest.raises(ValueError):
        DataQuality(freshness_s=-1)
    with pytest.raises(ValueError):
        DataQuality(resolution=0)
    with pytest.raises(ValueError):
        DataQuality(accuracy=1.5)
    with pytest.raises(ValueError):
        DataQuality(coverage_radius_m=-1)


def test_perfect_quality_scores_near_one():
    quality = DataQuality(freshness_s=0.0, coverage_radius_m=100.0, resolution=0.1, accuracy=1.0)
    assert quality_score(quality) == pytest.approx(1.0)


def test_stale_data_scores_zero():
    stale = DataQuality(freshness_s=10.0, coverage_radius_m=100.0, resolution=0.1, accuracy=1.0)
    assert quality_score(stale, max_acceptable_age_s=2.0) == 0.0


def test_score_monotone_in_each_dimension():
    base = DataQuality(freshness_s=0.5, coverage_radius_m=40.0, resolution=1.0, accuracy=0.9)
    fresher = DataQuality(freshness_s=0.1, coverage_radius_m=40.0, resolution=1.0, accuracy=0.9)
    wider = DataQuality(freshness_s=0.5, coverage_radius_m=60.0, resolution=1.0, accuracy=0.9)
    sharper = DataQuality(freshness_s=0.5, coverage_radius_m=40.0, resolution=0.5, accuracy=0.9)
    assert quality_score(fresher) > quality_score(base)
    assert quality_score(wider) > quality_score(base)
    assert quality_score(sharper) > quality_score(base)


def test_meets_requirement_direction_of_each_field():
    required = DataQuality(freshness_s=1.0, coverage_radius_m=50.0, resolution=0.5, accuracy=0.8)
    good = DataQuality(freshness_s=0.5, coverage_radius_m=60.0, resolution=0.4, accuracy=0.9)
    too_stale = DataQuality(freshness_s=2.0, coverage_radius_m=60.0, resolution=0.4, accuracy=0.9)
    too_narrow = DataQuality(freshness_s=0.5, coverage_radius_m=30.0, resolution=0.4, accuracy=0.9)
    too_coarse = DataQuality(freshness_s=0.5, coverage_radius_m=60.0, resolution=1.0, accuracy=0.9)
    inaccurate = DataQuality(freshness_s=0.5, coverage_radius_m=60.0, resolution=0.4, accuracy=0.5)
    assert meets_requirement(good, required)
    assert not meets_requirement(too_stale, required)
    assert not meets_requirement(too_narrow, required)
    assert not meets_requirement(too_coarse, required)
    assert not meets_requirement(inaccurate, required)


def test_exactly_equal_quality_meets_requirement():
    quality = DataQuality(freshness_s=1.0, coverage_radius_m=50.0, resolution=0.5, accuracy=0.8)
    assert meets_requirement(quality, quality)

"""Tests for object lists and their fusion."""

import pytest

from repro.geometry.vector import Vec2
from repro.perception.objects import FusedObject, ObjectList, fuse_object_lists


def make_list(observer, time, objects):
    return ObjectList(
        observer=observer,
        timestamp=time,
        objects=[FusedObject(label=l, position=p, confidence=c) for l, p, c in objects],
    )


def test_basic_properties():
    ol = make_list("a", 1.0, [("x", Vec2(0, 0), 0.9), ("y", Vec2(1, 1), 0.8)])
    assert len(ol) == 2
    assert ol.labels() == ["x", "y"]
    assert ol.contains_label("x")
    assert not ol.contains_label("z")
    assert ol.size_bytes() == 64 + 100


def test_fusion_merges_same_label():
    a = make_list("a", 1.0, [("ped", Vec2(0, 0), 0.5)])
    b = make_list("b", 2.0, [("ped", Vec2(2, 0), 0.5)])
    fused = fuse_object_lists([a, b])
    assert len(fused) == 1
    obj = fused.objects[0]
    assert obj.observers == 2
    assert obj.position == Vec2(1, 0)          # equal-confidence average
    assert obj.confidence == pytest.approx(0.75)  # noisy-or of two 0.5s
    assert fused.timestamp == 1.0              # oldest contributor


def test_fusion_union_of_different_labels():
    a = make_list("a", 1.0, [("x", Vec2(0, 0), 0.9)])
    b = make_list("b", 1.0, [("y", Vec2(5, 5), 0.9)])
    fused = fuse_object_lists([a, b])
    assert sorted(fused.labels()) == ["x", "y"]
    assert "a" in fused.observer and "b" in fused.observer


def test_fusion_weights_positions_by_confidence():
    a = make_list("a", 1.0, [("x", Vec2(0, 0), 0.9)])
    b = make_list("b", 1.0, [("x", Vec2(10, 0), 0.1)])
    fused = fuse_object_lists([a, b])
    assert fused.objects[0].position.x == pytest.approx(1.0)


def test_fusion_single_list_is_identity_like():
    a = make_list("a", 1.0, [("x", Vec2(0, 0), 0.9)])
    fused = fuse_object_lists([a])
    assert fused.labels() == ["x"]
    assert fused.objects[0].confidence == pytest.approx(0.9)


def test_fusion_requires_at_least_one_list():
    with pytest.raises(ValueError):
        fuse_object_lists([])

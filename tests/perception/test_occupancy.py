"""Tests for occupancy grids."""

import pytest

from repro.geometry.vector import Vec2
from repro.perception.occupancy import FREE, OCCUPIED, UNKNOWN, GridSpec, OccupancyGrid


def make_grid(cell_size=1.0, size=20.0):
    spec = GridSpec(origin=Vec2(0, 0), width_m=size, height_m=size, cell_size=cell_size)
    return OccupancyGrid(spec)


def test_spec_dimensions_and_transforms():
    spec = GridSpec(Vec2(0, 0), 10.0, 20.0, cell_size=2.0)
    assert spec.cols == 5
    assert spec.rows == 10
    row, col = spec.to_cell(Vec2(3.0, 5.0))
    assert (row, col) == (2, 1)
    center = spec.to_world(2, 1)
    assert center == Vec2(3.0, 5.0)
    assert spec.contains_cell(0, 0)
    assert not spec.contains_cell(10, 0)


def test_spec_validation():
    with pytest.raises(ValueError):
        GridSpec(Vec2(0, 0), 0.0, 10.0)
    with pytest.raises(ValueError):
        GridSpec(Vec2(0, 0), 10.0, 10.0, cell_size=0.0)


def test_mark_and_query():
    grid = make_grid()
    assert grid.state_at(Vec2(5, 5)) == UNKNOWN
    assert grid.mark_occupied(Vec2(5, 5))
    assert grid.state_at(Vec2(5, 5)) == OCCUPIED
    assert not grid.mark(Vec2(100, 100), FREE)
    assert grid.state_at(Vec2(100, 100)) == UNKNOWN


def test_ray_marking_marks_free_but_not_over_occupied():
    grid = make_grid()
    grid.mark_occupied(Vec2(5.5, 0.5))
    touched = grid.mark_ray_free(Vec2(0.5, 0.5), Vec2(10.5, 0.5))
    assert touched > 0
    assert grid.state_at(Vec2(2.5, 0.5)) == FREE
    assert grid.state_at(Vec2(5.5, 0.5)) == OCCUPIED   # never downgraded


def test_known_fraction_increases_with_marks():
    grid = make_grid()
    assert grid.known_fraction() == 0.0
    grid.mark_ray_free(Vec2(0, 10), Vec2(20, 10))
    assert grid.known_fraction() > 0.0


def test_fusion_occupied_wins():
    a = make_grid()
    b = make_grid()
    a.mark(Vec2(5, 5), FREE)
    b.mark_occupied(Vec2(5, 5))
    b.mark(Vec2(1, 1), FREE)
    fused = a.fuse(b)
    assert fused.state_at(Vec2(5, 5)) == OCCUPIED
    assert fused.state_at(Vec2(1, 1)) == FREE
    assert a.state_at(Vec2(5, 5)) == FREE   # originals untouched


def test_fuse_all_and_spec_mismatch():
    grids = [make_grid() for _ in range(3)]
    grids[0].mark_occupied(Vec2(1, 1))
    grids[2].mark_occupied(Vec2(3, 3))
    fused = OccupancyGrid.fuse_all(grids)
    assert fused.state_at(Vec2(1, 1)) == OCCUPIED
    assert fused.state_at(Vec2(3, 3)) == OCCUPIED
    other = OccupancyGrid(GridSpec(Vec2(0, 0), 5.0, 5.0))
    with pytest.raises(ValueError):
        grids[0].fuse(other)
    with pytest.raises(ValueError):
        OccupancyGrid.fuse_all([])


def test_occupied_cells_and_size():
    grid = make_grid()
    grid.mark_occupied(Vec2(2, 3))
    assert grid.occupied_cells() == [(3, 2)]
    assert grid.size_bytes() == 400 + 64

"""Tests for the look-around-the-corner perception functions and metrics."""

import pytest

from repro.compute.faas import FunctionRegistry
from repro.data.datatypes import DataType
from repro.data.pond import DataPond
from repro.data.sensors import Detection, SensorFrame
from repro.geometry.vector import Vec2
from repro.perception.lookaround import (
    LookAroundMetrics,
    build_local_object_list,
    build_local_occupancy,
    register_perception_functions,
)
from repro.perception.occupancy import GridSpec, OCCUPIED


def pond_with_detections(detections, time=1.0, owner="n"):
    pond = DataPond(owner)
    pond.store(
        SensorFrame(
            data_type=DataType.LIDAR_SCAN,
            timestamp=time,
            origin=Vec2(0, 0),
            detections=[Detection(l, p, c) for l, p, c in detections],
            range_m=80.0,
        )
    )
    return pond


def test_object_list_from_pond_with_region_filter():
    pond = pond_with_detections([("near", Vec2(5, 0), 0.9), ("far", Vec2(60, 0), 0.9)])
    full = build_local_object_list({"now": 1.0, "max_age": 1.0}, pond)
    assert sorted(full.labels()) == ["far", "near"]
    filtered = build_local_object_list(
        {"now": 1.0, "max_age": 1.0, "region_center": Vec2(0, 0), "region_radius": 10.0},
        pond,
    )
    assert filtered.labels() == ["near"]


def test_object_list_empty_when_no_fresh_frames():
    pond = pond_with_detections([("x", Vec2(5, 0), 0.9)], time=0.0)
    result = build_local_object_list({"now": 10.0, "max_age": 1.0}, pond)
    assert len(result) == 0


def test_occupancy_from_pond_marks_detections():
    pond = pond_with_detections([("x", Vec2(5, 5), 0.9)])
    spec = GridSpec(Vec2(-10, -10), 40.0, 40.0, cell_size=1.0)
    grid = build_local_occupancy({"grid_spec": spec, "now": 1.0, "max_age": 1.0}, pond)
    assert grid.state_at(Vec2(5, 5)) == OCCUPIED
    assert grid.known_fraction() > 0.0


def test_register_perception_functions():
    registry = FunctionRegistry()
    register_perception_functions(registry)
    assert "perceive_objects" in registry
    assert "perceive_occupancy" in registry
    objects_def = registry.get("perceive_objects")
    assert objects_def.cost_model({"frame_count_hint": 2}) > objects_def.cost_model({}) / 2
    # Result size callable works on an ObjectList.
    result = build_local_object_list({"now": 1.0}, pond_with_detections([("x", Vec2(1, 1), 0.9)]))
    assert objects_def.result_size(result) == result.size_bytes()


def test_lookaround_metrics_detection_rate():
    metrics = LookAroundMetrics()
    metrics.record_attempt(1.0, ["hidden"], ["other"])           # miss
    metrics.record_attempt(2.0, ["hidden"], ["hidden", "other"])  # hit
    metrics.record_attempt(3.0, [], ["whatever"])                 # nothing occluded
    assert metrics.attempts == 3
    assert metrics.occluded_present == 2
    assert metrics.occluded_detected == 1
    assert metrics.occluded_detection_rate() == 0.5
    assert metrics.detected_agent_count() == 1
    assert metrics.first_detection_time["hidden"] == 2.0


def test_metrics_with_no_occlusions_rate_is_one():
    metrics = LookAroundMetrics()
    metrics.record_attempt(1.0, [], [])
    assert metrics.occluded_detection_rate() == 1.0

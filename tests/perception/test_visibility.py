"""Tests for observer visibility reports."""

from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2
from repro.perception.visibility import observer_visibility


def test_classification_of_targets():
    visibility = VisibilityMap([Rectangle(10, 10, 30, 30)])
    targets = [
        ("visible", Vec2(0, 50)),
        ("occluded", Vec2(40, 40)),
        ("out_of_range", Vec2(500, 0)),
        ("self", Vec2(0, 0)),
    ]
    report = observer_visibility("self", Vec2(0, 0), targets, visibility, max_range=100.0)
    assert report.visible_labels == ("visible",)
    assert report.occluded_labels == ("occluded",)
    assert report.out_of_range_labels == ("out_of_range",)
    assert report.visible_fraction == 1 / 3


def test_empty_targets_fraction_is_one():
    report = observer_visibility("me", Vec2(0, 0), [], VisibilityMap([]))
    assert report.visible_fraction == 1.0


def test_no_obstacles_everything_in_range_visible():
    targets = [("a", Vec2(10, 0)), ("b", Vec2(0, 20))]
    report = observer_visibility("me", Vec2(0, 0), targets, VisibilityMap([]), max_range=50.0)
    assert set(report.visible_labels) == {"a", "b"}
    assert report.visible_fraction == 1.0

"""Format stability: old artifacts keep replaying, byte for byte.

The golden fixture under ``fixtures/`` is a real mid-run checkpoint (faults
active) committed to the repository.  CI restores it and finishes the run,
asserting the report matches the expected values frozen next to it — so any
change to the codec layout, the pickled class shapes or the RNG stream
naming that would orphan existing checkpoints fails here loudly.  After an
*intentional* break, bump ``SNAPSHOT_VERSION`` and regenerate with
``tools/make_snapshot_fixture.py``.
"""

import json
import os

from repro.scenarios import build_scenario
from repro.scenarios.base import Scenario
from repro.snapshot import SNAPSHOT_VERSION, SnapshotCodec

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
FIXTURE = os.path.join(FIXTURE_DIR, "urban_grid_mid_run.reprosnap")
EXPECTED = os.path.join(FIXTURE_DIR, "urban_grid_mid_run.expected.json")


def _load():
    with open(FIXTURE, "rb") as handle:
        blob = handle.read()
    with open(EXPECTED) as handle:
        expected = json.load(handle)
    return blob, expected


def test_golden_fixture_header_is_current_format():
    blob, expected = _load()
    header = SnapshotCodec().read_header(blob)
    assert header["version"] == SNAPSHOT_VERSION == expected["snapshot_version"]
    assert header["metadata"] == expected["header_metadata"]


def test_golden_fixture_replays_to_the_frozen_report():
    blob, expected = _load()
    scenario = Scenario.restore(blob)
    assert scenario.sim.now == expected["cut"]
    report = scenario.resume()
    assert report.as_dict() == expected["resumed_report"]


def test_golden_fixture_matches_a_fresh_run_of_the_same_config():
    """The frozen report is still what today's code computes from scratch."""
    _, expected = _load()
    scenario = build_scenario(
        expected["scenario"].replace("_", "-"),
        n=expected["fleet"],
        seed=expected["seed"],
        **expected["knobs"],
    )
    report = scenario.run(expected["duration"])
    assert report.as_dict() == expected["resumed_report"]


def test_snapshot_of_restored_scenario_is_bit_identical():
    """Within-process idempotence: restore -> snapshot reproduces the bytes.

    (Bit-identity across *processes* is deliberately not promised — Python
    set iteration order is hash-randomised per process — but within one
    process a snapshot must be a fixed point of restore.)
    """
    scenario = build_scenario("highway", n=4, seed=5)
    scenario.run(6.0)
    first = scenario.snapshot()
    restored = Scenario.restore(first)
    second = restored.snapshot()
    assert second == first


def test_snapshot_artifact_is_deterministic_within_process():
    """Snapshotting the same state twice yields the same bytes."""
    scenario = build_scenario("highway", n=4, seed=5)
    scenario.run(6.0)
    assert scenario.snapshot() == scenario.snapshot()

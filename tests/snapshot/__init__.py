"""Test package (unique module paths for pytest collection)."""

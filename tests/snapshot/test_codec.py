"""The snapshot codec rejects everything that is not exactly right."""

import json

import pytest

from repro.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotCodec,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
)


@pytest.fixture
def artifact():
    return SnapshotCodec().encode({"answer": 42}, metadata={"kind": "test"})


def test_round_trip(artifact):
    payload, header = SnapshotCodec().decode(artifact)
    assert payload == {"answer": 42}
    assert header["version"] == SNAPSHOT_VERSION
    assert header["metadata"] == {"kind": "test"}


def test_header_readable_without_payload_decode(artifact):
    header = SnapshotCodec().read_header(artifact)
    assert header["payload_bytes"] > 0
    assert len(header["payload_sha256"]) == 64


def test_rejects_non_snapshot_bytes():
    with pytest.raises(SnapshotFormatError, match="bad magic"):
        SnapshotCodec().decode(b"definitely not a snapshot")


def test_rejects_wrong_type():
    with pytest.raises(SnapshotFormatError, match="must be bytes"):
        SnapshotCodec().decode("a string")


@pytest.mark.parametrize("keep", [3, len(SNAPSHOT_MAGIC) + 2, 40])
def test_rejects_truncation(artifact, keep):
    with pytest.raises(SnapshotFormatError):
        SnapshotCodec().decode(artifact[:keep])


def test_rejects_truncated_payload(artifact):
    with pytest.raises(SnapshotFormatError, match="truncated"):
        SnapshotCodec().decode(artifact[:-1])


def _header_bounds(blob):
    offset = len(SNAPSHOT_MAGIC)
    header_len = int.from_bytes(blob[offset : offset + 4], "big")
    return offset + 4, offset + 4 + header_len


def _rewrite_header(blob, mutate):
    start, end = _header_bounds(blob)
    header = json.loads(blob[start:end])
    mutate(header)
    new_header = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    return (
        SNAPSHOT_MAGIC
        + len(new_header).to_bytes(4, "big")
        + new_header
        + blob[end:]
    )


def test_rejects_unknown_version_loudly(artifact):
    tampered = _rewrite_header(
        artifact, lambda h: h.update(version=SNAPSHOT_VERSION + 1)
    )
    with pytest.raises(SnapshotVersionError, match="not supported"):
        SnapshotCodec().decode(tampered)


def test_rejects_missing_header_field(artifact):
    tampered = _rewrite_header(artifact, lambda h: h.pop("payload_sha256"))
    with pytest.raises(SnapshotFormatError, match="missing"):
        SnapshotCodec().decode(tampered)


def test_rejects_tampered_payload(artifact):
    start, end = _header_bounds(artifact)
    body = bytearray(artifact)
    body[-1] ^= 0xFF
    with pytest.raises(SnapshotIntegrityError, match="hash mismatch"):
        SnapshotCodec().decode(bytes(body))


def test_rejects_tampered_hash(artifact):
    tampered = _rewrite_header(
        artifact, lambda h: h.update(payload_sha256="0" * 64)
    )
    with pytest.raises(SnapshotIntegrityError):
        SnapshotCodec().decode(tampered)


def test_error_hierarchy():
    for error in (SnapshotFormatError, SnapshotVersionError, SnapshotIntegrityError):
        assert issubclass(error, SnapshotError)


def test_tampered_hash_does_not_reach_pickle(artifact, monkeypatch):
    """Integrity is checked before unpickling, not after."""
    import pickle

    def boom(*_args, **_kwargs):
        raise AssertionError("pickle.loads reached with a bad hash")

    monkeypatch.setattr(pickle, "loads", boom)
    tampered = _rewrite_header(
        artifact, lambda h: h.update(payload_sha256="f" * 64)
    )
    with pytest.raises(SnapshotIntegrityError):
        SnapshotCodec().decode(tampered)

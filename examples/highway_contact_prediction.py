"""Contact-time prediction on a highway: why Model 1 looks at velocities.

Run with::

    python examples/highway_contact_prediction.py

Two platoons pass each other on a highway.  Each vehicle's Model 1 network
description predicts, per neighbour, how long that neighbour will remain in
communication range — effectively infinite for platoon mates, a handful of
seconds for oncoming traffic.  The AirDnD candidate scorer uses exactly this
number to refuse offloading a long task to a vehicle that will be gone before
the result can come back.
"""

from repro.scenarios.highway import HighwayConfig, HighwayScenario


def main() -> None:
    scenario = HighwayScenario(
        HighwayConfig(vehicles_per_direction=5, task_rate_per_s=1.0, seed=3)
    )
    # Let the platoons close in on each other and exchange beacons.
    scenario.run(duration=20.0)

    ego = scenario.nodes[0]                      # lead vehicle of the forward platoon
    description = ego.network_description()
    print(f"Network description of {description.owner} at t={description.time:.1f}s "
          f"({len(description)} neighbours):\n")
    print(f"{'neighbour':<10} {'distance [m]':>13} {'rel. speed [m/s]':>17} "
          f"{'predicted contact [s]':>22} {'headroom [ops/s]':>18}")
    ego_velocity = ego.mobile.velocity
    for neighbor in sorted(description.neighbors, key=lambda n: n.distance_m):
        relative_speed = (neighbor.velocity - ego_velocity).length()
        contact = neighbor.predicted_contact_time_s
        contact_text = "unbounded" if contact == float("inf") else f"{contact:.1f}"
        print(f"{neighbor.name:<10} {neighbor.distance_m:>13.1f} {relative_speed:>17.1f} "
              f"{contact_text:>22} {neighbor.compute_headroom_ops:>18.2e}")

    same_direction = [n for n in description.neighbors if n.name.startswith("fwd")]
    oncoming = [n for n in description.neighbors if n.name.startswith("bwd")]
    if same_direction and oncoming:
        print("\nPlatoon mates offer long (often unbounded) contact windows; oncoming")
        print("vehicles only a few seconds — the scorer's contact-time filter keeps")
        print("long-running tasks off the latter automatically.")

    report = scenario.build_report()
    print(f"\nWorkload summary: {report.tasks_completed} tasks completed, "
          f"success rate {report.success_rate:.2f}, "
          f"mean latency {report.mean_task_latency_s * 1e3:.0f} ms")


if __name__ == "__main__":
    main()

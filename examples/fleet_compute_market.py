"""A city fleet as a compute market: AirDnD versus auction-based allocation.

Run with::

    python examples/fleet_compute_market.py

Twelve vehicles with heterogeneous compute drive random routes over a
Manhattan grid while a Poisson stream of generic compute tasks arrives at
random vehicles.  The same workload is run four times, changing only the
allocation mechanism: AirDnD's beacon-driven multi-criteria selection, a
DeCloud-style double auction, a smart-contract first-come-first-served
allocator, and a coded-redundancy auction.  The printed table mirrors
experiment E7 of the benchmark suite.
"""

from repro.baselines.coded_vec_auction import CodedAuctionPlacement
from repro.baselines.decloud_auction import AuctionPlacement
from repro.baselines.smart_contract import ContractPlacement
from repro.metrics.report import ResultTable
from repro.scenarios.urban_grid import UrbanGridConfig, UrbanGridScenario

DURATION = 30.0


def run_with(name, placement_factory):
    scenario = UrbanGridScenario(
        UrbanGridConfig(num_vehicles=12, task_rate_per_s=2.0, seed=71)
    )
    if placement_factory is not None:
        for node in scenario.nodes:
            node.orchestrator.placement = placement_factory()
    report = scenario.run(duration=DURATION)
    return name, report


def main() -> None:
    runs = [
        run_with("AirDnD multi-criteria", None),
        run_with("DeCloud double auction", AuctionPlacement),
        run_with("smart-contract FCFS", ContractPlacement),
        run_with("coded VEC auction", lambda: CodedAuctionPlacement(k=1)),
    ]

    table = ResultTable(
        "Fleet compute market: 30 s of shared workload, 12 heterogeneous vehicles",
        ["mechanism", "tasks done", "success rate", "mean latency [s]",
         "p95 latency [s]", "offloaded", "mesh bytes"],
    )
    for name, report in runs:
        table.add_row(name, report.tasks_completed, report.success_rate,
                      report.mean_task_latency_s, report.p95_task_latency_s,
                      report.offloaded_tasks, report.mesh_bytes)
    print(table.render())
    print()
    print("AirDnD reaches comparable allocation quality without any auction round,")
    print("ledger or clearing price — every decision is made locally from beacons")
    print("that were already being broadcast for mesh maintenance.")


if __name__ == "__main__":
    main()

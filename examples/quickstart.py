"""Quickstart: two parked vehicles share compute over a spontaneous mesh.

Run with::

    python examples/quickstart.py

The example builds the smallest possible AirDnD deployment — one requester
and one helper, both stationary — registers a trivial function in the shared
catalogue, lets beacons flow for a couple of simulated seconds, and then
submits a task.  The orchestrator discovers the helper from its beacons,
offloads the task over the mesh, and the result comes back with a timing
breakdown.
"""

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.api import AirDnDConfig, AirDnDNode
from repro.core.task_model import build_task
from repro.geometry.vector import Vec2
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator


def main() -> None:
    sim = Simulator(seed=7)
    environment = RadioEnvironment(sim, LinkBudget())

    # The shared function catalogue: every node agrees on what "estimate_pi"
    # means, so only its *name* ever travels over the air (Model 2).
    registry = FunctionRegistry()
    registry.register(
        FunctionDefinition(
            name="estimate_pi",
            body=lambda params, pond: 355.0 / 113.0,
            cost_model=lambda params: 2e8,
            result_size_bytes=64,
        )
    )

    requester = AirDnDNode(
        sim, environment, StaticNode(sim, Vec2(0.0, 0.0), name="requester"), registry,
        config=AirDnDConfig(),
    )
    helper = AirDnDNode(
        sim, environment, StaticNode(sim, Vec2(60.0, 0.0), name="helper"), registry,
    )

    # Let the asynchronous beaconing run so the nodes discover each other.
    sim.run(until=2.0)
    view = requester.network_description()
    print(f"[{sim.now:5.2f}s] requester's mesh view: {view.names()}")
    print(f"          advertised spare compute: {view.total_headroom_ops():.2e} ops/s")

    def on_result(result) -> None:
        print(f"[{sim.now:5.2f}s] result from {result.executor}: {result.value:.6f}")
        print(f"          compute {result.compute_time_s * 1e3:.1f} ms, "
              f"end-to-end {result.total_latency_s * 1e3:.1f} ms, "
              f"{result.result_size_bytes} B returned")

    task = build_task(registry, "estimate_pi")
    requester.submit_task(task, on_result=on_result)
    sim.run(until=10.0)

    print(f"          bytes sent by requester over the mesh: {requester.bytes_sent()}")
    print(f"          helper executed {helper.executor.offers_accepted} offloaded task(s)")


if __name__ == "__main__":
    main()

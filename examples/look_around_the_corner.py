"""The paper's driving use case: looking around the corner at an intersection.

Run with::

    python examples/look_around_the_corner.py

An ego vehicle approaches an intersection whose corners are blocked by
buildings; a pedestrian stands on the crossing arm where the ego cannot see.
Every second the ego asks AirDnD for a ``perceive_objects`` task placed on an
in-range vehicle whose data pond covers the intersection.  The script prints
the occluded-agent detection rate achieved with AirDnD and, for contrast,
with offloading disabled (local perception only).
"""

from repro.baselines.local_only import LocalOnlyPlacement
from repro.scenarios.intersection import build_intersection_scenario

DURATION = 25.0
VEHICLES = 6
SEED = 7


def run(label, force_local):
    scenario = build_intersection_scenario(num_vehicles=VEHICLES, seed=SEED)
    if force_local:
        for node in scenario.nodes:
            node.orchestrator.placement = LocalOnlyPlacement()
    report = scenario.run(duration=DURATION)
    print(f"--- {label} ---")
    print(f"  perception rounds              : {report.extra['perception_rounds']:.0f}")
    print(f"  occluded-agent detection rate  : {report.extra['occluded_detection_rate']:.2f}")
    print(f"  distinct occluded agents found : {report.extra['occluded_agents_detected']:.0f}")
    print(f"  tasks completed / failed       : {report.tasks_completed} / {report.tasks_failed}")
    print(f"  mean perception-task latency   : {report.mean_task_latency_s * 1e3:.0f} ms")
    print(f"  bytes moved over the mesh      : {report.mesh_bytes:.0f}")
    print()
    return report


def main() -> None:
    airdnd = run("AirDnD: tasks travel to the data", force_local=False)
    local = run("Baseline: local perception only", force_local=True)

    gain = airdnd.extra["occluded_detection_rate"] - local.extra["occluded_detection_rate"]
    print(f"AirDnD lifted the occluded-agent detection rate by "
          f"{gain:+.2f} while moving only task descriptions and object lists "
          f"({airdnd.mesh_bytes / 1e3:.0f} kB in {DURATION:.0f} s) — the raw lidar frames "
          f"never left the vehicles that captured them.")


if __name__ == "__main__":
    main()
